// Package bench is the experiment harness that regenerates every table and
// figure of Section 6 of "Association Rules with Graph Patterns" (PVLDB
// 2015) at laptop scale: Figures 5(a)-5(f) and the varying-d result for
// DMine vs DMineNo, Figure 5(g)'s case study, the precision table
// (conf vs PCAconf vs Iconf), and Figures 5(h)-5(o) for Match vs Matchc vs
// DisVF2.
//
// Graph sizes are scaled (Section 2 of DESIGN.md); each experiment reports
// wall-clock seconds and, because this reproduction runs workers as
// goroutines possibly on few cores, also the maximum per-worker match-work
// counter — the quantity the paper's parallel-scalability claims are about.
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

// Point is one measurement.
type Point struct {
	X       string  // swept parameter value
	Seconds float64 // wall-clock time
	Work    float64 // max per-worker op count (parallel-scalability proxy)
}

// Series is one algorithm's curve.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one reproduced plot.
type Figure struct {
	ID    string // e.g. "5a"
	Title string
	XAxis string
	Serie []Series
}

// Format renders the figure as an aligned text table.
func (f Figure) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure %s — %s (x: %s)\n", f.ID, f.Title, f.XAxis)
	fmt.Fprintf(w, "%-12s", f.XAxis)
	for _, s := range f.Serie {
		fmt.Fprintf(w, "%18s", s.Name+" (s)")
		fmt.Fprintf(w, "%18s", s.Name+" (work)")
	}
	fmt.Fprintln(w)
	if len(f.Serie) == 0 {
		return
	}
	for i := range f.Serie[0].Points {
		fmt.Fprintf(w, "%-12s", f.Serie[0].Points[i].X)
		for _, s := range f.Serie {
			if i < len(s.Points) {
				fmt.Fprintf(w, "%18.3f%18.0f", s.Points[i].Seconds, s.Points[i].Work)
			}
		}
		fmt.Fprintln(w)
	}
}

// Scale fixes the scaled-down workload sizes. The paper's sizes divided by
// roughly 1000 (documented in DESIGN.md/EXPERIMENTS.md).
type Scale struct {
	PokecUsers int
	GplusUsers int
	SynSizes   [][2]int // (|V|, |E|) sweep for Figs 5(f) and 5(o)
	Ns         []int    // worker sweep (the paper's 4..20)
	SigmaPokec []int    // σ sweep for Fig 5(c) (scaled from 3k..7k)
	SigmaGplus []int
	RuleCounts []int // ||Σ|| sweep for Figs 5(j)(k)
	Ds         []int // d sweep for Figs 5(l)(m)
	Seed       int64
}

// DefaultScale returns the default laptop-scale parameters.
func DefaultScale() Scale {
	return Scale{
		PokecUsers: 1500,
		GplusUsers: 1500,
		SynSizes:   [][2]int{{10000, 20000}, {20000, 40000}, {30000, 60000}, {40000, 80000}, {50000, 100000}},
		Ns:         []int{4, 8, 12, 16, 20},
		SigmaPokec: []int{30, 40, 50, 60, 70},
		SigmaGplus: []int{7, 8, 9, 10, 11},
		RuleCounts: []int{8, 16, 24, 32, 40, 48},
		Ds:         []int{1, 2, 3},
		Seed:       1,
	}
}

// QuickScale returns a tiny configuration for smoke tests.
func QuickScale() Scale {
	return Scale{
		PokecUsers: 250,
		GplusUsers: 250,
		SynSizes:   [][2]int{{1000, 2000}, {2000, 4000}},
		Ns:         []int{2, 4},
		SigmaPokec: []int{5, 10},
		SigmaGplus: []int{3, 5},
		RuleCounts: []int{4, 8},
		Ds:         []int{1, 2},
		Seed:       1,
	}
}

// graphCache memoizes generated graphs so sweeps share workloads.
var graphCache sync.Map // string -> cached

type cached struct {
	g    *graph.Graph
	syms *graph.Symbols
}

// PokecGraph returns the memoized Pokec-like graph for the scale.
func PokecGraph(users int, seed int64) (*graph.Graph, *graph.Symbols) {
	key := fmt.Sprintf("pokec-%d-%d", users, seed)
	if c, ok := graphCache.Load(key); ok {
		cc := c.(cached)
		return cc.g, cc.syms
	}
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(users, seed))
	graphCache.Store(key, cached{g, syms})
	return g, syms
}

// GplusGraph returns the memoized Google+-like graph for the scale.
func GplusGraph(users int, seed int64) (*graph.Graph, *graph.Symbols) {
	key := fmt.Sprintf("gplus-%d-%d", users, seed)
	if c, ok := graphCache.Load(key); ok {
		cc := c.(cached)
		return cc.g, cc.syms
	}
	syms := graph.NewSymbols()
	g := gen.Gplus(syms, gen.DefaultGplus(users, seed))
	graphCache.Store(key, cached{g, syms})
	return g, syms
}

// SyntheticGraph returns the memoized synthetic graph of the given size.
func SyntheticGraph(nv, ne int, seed int64) (*graph.Graph, *graph.Symbols) {
	key := fmt.Sprintf("syn-%d-%d-%d", nv, ne, seed)
	if c, ok := graphCache.Load(key); ok {
		cc := c.(cached)
		return cc.g, cc.syms
	}
	syms := graph.NewSymbols()
	g := gen.Synthetic(syms, nv, ne, seed)
	graphCache.Store(key, cached{g, syms})
	return g, syms
}

// SyntheticPredicate picks a predicate with support on a synthetic graph:
// the most frequent (xLabel, edgeLabel, yLabel) triple.
func SyntheticPredicate(g *graph.Graph) core.Predicate {
	counts := map[core.Predicate]int{}
	for v := 0; v < g.NumNodes(); v++ {
		from := graph.NodeID(v)
		for _, e := range g.Out(from) {
			p := core.Predicate{XLabel: g.Label(from), EdgeLabel: e.Label, YLabel: g.Label(e.To)}
			counts[p]++
		}
	}
	var best core.Predicate
	bestN := -1
	for p, n := range counts {
		if n > bestN || (n == bestN && less(p, best)) {
			best, bestN = p, n
		}
	}
	return best
}

func less(a, b core.Predicate) bool {
	if a.XLabel != b.XLabel {
		return a.XLabel < b.XLabel
	}
	if a.EdgeLabel != b.EdgeLabel {
		return a.EdgeLabel < b.EdgeLabel
	}
	return a.YLabel < b.YLabel
}

// timeDMine runs one miner and reports seconds plus the work proxy.
func timeDMine(f func() *mine.Result) Point {
	start := time.Now()
	res := f()
	return Point{Seconds: time.Since(start).Seconds(), Work: float64(res.MaxWorkerOp)}
}

// timeEIP runs one EIP algorithm and reports seconds plus the work proxy.
func timeEIP(f func() (*eip.Result, error)) (Point, error) {
	start := time.Now()
	res, err := f()
	if err != nil {
		return Point{}, err
	}
	return Point{Seconds: time.Since(start).Seconds(), Work: float64(res.MaxWorkerOp)}, nil
}

// WriteCSV renders the figure as CSV rows (x, series, seconds, work) for
// external plotting.
func (f Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "figure,x,series,seconds,work\n"); err != nil {
		return err
	}
	for _, s := range f.Serie {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%.6f,%.0f\n", f.ID, p.X, s.Name, p.Seconds, p.Work); err != nil {
				return err
			}
		}
	}
	return nil
}
