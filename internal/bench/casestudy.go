package bench

import (
	"fmt"
	"io"

	"gpar/internal/fsm"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

// CaseStudy reproduces Figure 5(g) / Exp-2's qualitative study: it mines
// diversified GPARs from the Pokec-like and Google+-like graphs, prints the
// top rules in a human-readable form (the analogue of the paper's R9-R11),
// and contrasts them with the consequent-free frequent patterns a GRAMI-like
// miner returns.
func CaseStudy(w io.Writer, sc Scale) {
	fmt.Fprintln(w, "=== Case study: GPARs discovered by DMine (Fig. 5(g)) ===")
	pg, psyms := PokecGraph(sc.PokecUsers, sc.Seed)
	fmt.Fprintf(w, "\n-- Pokec-like graph (%d nodes, %d edges)\n", pg.NumNodes(), pg.NumEdges())
	printTopRules(w, psyms, pg, sc, "pokec")

	gg, gsyms := GplusGraph(sc.GplusUsers, sc.Seed)
	fmt.Fprintf(w, "\n-- Google+-like graph (%d nodes, %d edges)\n", gg.NumNodes(), gg.NumEdges())
	printTopRules(w, gsyms, gg, sc, "gplus")

	fmt.Fprintln(w, "\n-- GRAMI-like frequent patterns (no consequent, for contrast)")
	user := psyms.Lookup("user")
	freq := fsm.Mine(pg, user, fsm.Options{MinSupport: sc.PokecUsers / 10, MaxEdges: 2, MaxPatterns: 5})
	for _, f := range freq {
		fmt.Fprintf(w, "  support %4d  %s\n", f.Support, f.P)
	}
	fmt.Fprintln(w, "  (frequent patterns reveal structure but carry no antecedent/consequent")
	fmt.Fprintln(w, "   correlation — the paper's observation about GRAMI's cycles of users)")
}

func printTopRules(w io.Writer, syms *graph.Symbols, g *graph.Graph, sc Scale, kind string) {
	var preds = gen.PokecPredicates(syms)
	sigma := sc.PokecUsers / 30
	if kind == "gplus" {
		preds = gen.GplusPredicates(syms)
		sigma = sc.GplusUsers / 30
	}
	if sigma < 2 {
		sigma = 2
	}
	pred := preds[0]
	opts := mine.Options{
		K: 5, Sigma: sigma, D: 2, Lambda: 0.25, N: 4,
		MaxEdges: 3, MaxCandidatesPerRound: 60,
	}.WithOptimizations()
	res := mine.DMine(g, pred, opts)
	fmt.Fprintf(w, "predicate %s, σ=%d: %d candidates kept, top %d:\n",
		pred.String(syms), sigma, res.Kept, len(res.TopK))
	for _, mm := range res.TopK {
		fmt.Fprintf(w, "  conf %.3f  supp %3d  %s\n", mm.Conf, mm.Stats.SuppR, mm.Rule)
	}
}
