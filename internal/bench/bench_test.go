package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The harness smoke tests run every experiment at QuickScale, checking the
// structural invariants the figures rely on: all series present, all points
// measured, and the expected ordering between optimized and baseline
// algorithms on the work proxy.

func TestFigureFormat(t *testing.T) {
	fig := Figure{ID: "x", Title: "t", XAxis: "n", Serie: []Series{
		{Name: "A", Points: []Point{{X: "1", Seconds: 0.5, Work: 10}}},
	}}
	var buf bytes.Buffer
	fig.Format(&buf)
	out := buf.String()
	for _, want := range []string{"Figure x", "A (s)", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func checkFigure(t *testing.T, fig Figure, wantSeries, wantPoints int) {
	t.Helper()
	if len(fig.Serie) != wantSeries {
		t.Fatalf("fig %s: %d series want %d", fig.ID, len(fig.Serie), wantSeries)
	}
	for _, s := range fig.Serie {
		if len(s.Points) != wantPoints {
			t.Errorf("fig %s series %s: %d points want %d", fig.ID, s.Name, len(s.Points), wantPoints)
		}
		for _, p := range s.Points {
			if p.Seconds < 0 || p.Work < 0 {
				t.Errorf("fig %s: negative measurement %+v", fig.ID, p)
			}
		}
	}
}

func TestDMineFiguresQuick(t *testing.T) {
	sc := QuickScale()
	checkFigure(t, Fig5a(sc), 2, len(sc.Ns))
	checkFigure(t, Fig5c(sc), 2, len(sc.SigmaPokec))
	checkFigure(t, Fig5e(sc), 2, len(sc.Ns))
	checkFigure(t, Fig5f(sc), 2, len(sc.SynSizes))
}

func TestDMineGplusFiguresQuick(t *testing.T) {
	sc := QuickScale()
	checkFigure(t, Fig5b(sc), 2, len(sc.Ns))
	checkFigure(t, Fig5d(sc), 2, len(sc.SigmaGplus))
	checkFigure(t, Fig5x(sc), 2, len(sc.Ds))
}

func TestEIPFiguresQuick(t *testing.T) {
	sc := QuickScale()
	for _, f := range []func(Scale) (Figure, error){Fig5h, Fig5j, Fig5n, Fig5o} {
		fig, err := f(sc)
		if err != nil {
			t.Fatalf("fig %s: %v", fig.ID, err)
		}
		if len(fig.Serie) != 3 {
			t.Errorf("fig %s: %d series want 3", fig.ID, len(fig.Serie))
		}
		// Match must not do more per-worker work than Matchc.
		for i := range fig.Serie[0].Points {
			if fig.Serie[0].Points[i].Work > fig.Serie[1].Points[i].Work {
				t.Errorf("fig %s point %d: Match work %v > Matchc %v",
					fig.ID, i, fig.Serie[0].Points[i].Work, fig.Serie[1].Points[i].Work)
			}
		}
	}
}

func TestEIPGplusAndDFiguresQuick(t *testing.T) {
	sc := QuickScale()
	for _, f := range []func(Scale) (Figure, error){Fig5i, Fig5k, Fig5l, Fig5m} {
		fig, err := f(sc)
		if err != nil {
			t.Fatalf("fig %s: %v", fig.ID, err)
		}
		if len(fig.Serie) != 3 {
			t.Errorf("fig %s: %d series want 3", fig.ID, len(fig.Serie))
		}
	}
}

func TestPrecisionQuick(t *testing.T) {
	sc := QuickScale()
	table := Precision(sc, []int{5, 10})
	if len(table.Metrics) != 3 {
		t.Fatalf("metrics = %v", table.Metrics)
	}
	for mi, row := range table.Values {
		if len(row) != 2 {
			t.Fatalf("row %d has %d values", mi, len(row))
		}
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Errorf("precision %v out of [0,1]", v)
			}
		}
	}
	var buf bytes.Buffer
	table.Format(&buf)
	if !strings.Contains(buf.String(), "conf") {
		t.Error("Format output missing metric names")
	}
}

func TestCaseStudyQuick(t *testing.T) {
	var buf bytes.Buffer
	CaseStudy(&buf, QuickScale())
	out := buf.String()
	for _, want := range []string{"Pokec-like", "Google+-like", "GRAMI-like"} {
		if !strings.Contains(out, want) {
			t.Errorf("case study output missing %q", want)
		}
	}
}

func TestGraphCaching(t *testing.T) {
	a, _ := PokecGraph(100, 5)
	b, _ := PokecGraph(100, 5)
	if a != b {
		t.Error("PokecGraph not memoized")
	}
	c, _ := PokecGraph(100, 6)
	if a == c {
		t.Error("different seeds shared a cache entry")
	}
	s1, _ := SyntheticGraph(50, 100, 1)
	s2, _ := SyntheticGraph(50, 100, 1)
	if s1 != s2 {
		t.Error("SyntheticGraph not memoized")
	}
	g1, _ := GplusGraph(100, 5)
	g2, _ := GplusGraph(100, 5)
	if g1 != g2 {
		t.Error("GplusGraph not memoized")
	}
}

func TestSyntheticPredicateHasSupport(t *testing.T) {
	g, _ := SyntheticGraph(500, 1000, 3)
	pred := SyntheticPredicate(g)
	if pred.XLabel == 0 || pred.EdgeLabel == 0 {
		t.Fatal("degenerate predicate")
	}
}

func TestWriteCSV(t *testing.T) {
	fig := Figure{ID: "5a", XAxis: "n", Serie: []Series{
		{Name: "DMine", Points: []Point{{X: "4", Seconds: 1.5, Work: 100}}},
		{Name: "DMineno", Points: []Point{{X: "4", Seconds: 2.0, Work: 100}}},
	}}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figure,x,series,seconds,work", "5a,4,DMine,1.500000,100", "5a,4,DMineno,2.000000,100"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
