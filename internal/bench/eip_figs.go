package bench

import (
	"fmt"

	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/gen"
	"gpar/internal/graph"
)

// eipAlgos names the three EIP competitors of Exp-3 in comparison order.
var eipAlgos = []string{"Match", "Matchc", "disVF2"}

func runEIP(name string, g *graph.Graph, rules []*core.Rule, opts eip.Options) (*eip.Result, error) {
	switch name {
	case "Match":
		return eip.Match(g, rules, opts)
	case "Matchc":
		return eip.Matchc(g, rules, opts)
	default:
		return eip.DisVF2(g, rules, opts)
	}
}

// eipSweep runs the three algorithms over a parameter sweep.
func eipSweep(id, title, xAxis string, xs []string,
	setup func(i int) (*graph.Graph, []*core.Rule, eip.Options)) (Figure, error) {
	fig := Figure{ID: id, Title: title, XAxis: xAxis}
	for _, name := range eipAlgos {
		fig.Serie = append(fig.Serie, Series{Name: name})
	}
	for i, x := range xs {
		g, rules, opts := setup(i)
		for si, name := range eipAlgos {
			p, err := timeEIP(func() (*eip.Result, error) { return runEIP(name, g, rules, opts) })
			if err != nil {
				return fig, fmt.Errorf("%s at %s=%s: %w", name, xAxis, x, err)
			}
			p.X = x
			fig.Serie[si].Points = append(fig.Serie[si].Points, p)
		}
	}
	return fig, nil
}

// eipRules builds a memoized rule set Σ for a graph and predicate with the
// Exp-3 shape |R| = (5,8) scaled to (4,5).
func eipRules(g *graph.Graph, pred core.Predicate, count int, seed int64) []*core.Rule {
	return gen.Rules(g, pred, gen.RuleGenParams{Count: count, VP: 4, EP: 5, Seed: seed})
}

// Fig5h: Match varying n (Pokec-like), ||Σ|| = 24, d bounded by rule shape.
func Fig5h(sc Scale) (Figure, error) {
	g, syms := PokecGraph(sc.PokecUsers, sc.Seed)
	rules := eipRules(g, gen.PokecPredicates(syms)[0], 24, sc.Seed)
	return eipSweep("5h", "Match: varying n (Pokec)", "n", intStrings(sc.Ns),
		func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
			return g, rules, eip.Options{N: sc.Ns[i], Eta: 1.5}
		})
}

// Fig5i: Match varying n (Google+-like).
func Fig5i(sc Scale) (Figure, error) {
	g, syms := GplusGraph(sc.GplusUsers, sc.Seed)
	rules := eipRules(g, gen.GplusPredicates(syms)[0], 24, sc.Seed)
	return eipSweep("5i", "Match: varying n (Google+)", "n", intStrings(sc.Ns),
		func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
			return g, rules, eip.Options{N: sc.Ns[i], Eta: 1.5}
		})
}

// Fig5j: Match varying ||Σ|| (Pokec-like), n = 8.
func Fig5j(sc Scale) (Figure, error) {
	g, syms := PokecGraph(sc.PokecUsers, sc.Seed)
	all := eipRules(g, gen.PokecPredicates(syms)[0], maxInt(sc.RuleCounts), sc.Seed)
	return eipSweep("5j", "Match: varying ||Σ|| (Pokec)", "||Σ||", intStrings(sc.RuleCounts),
		func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
			n := sc.RuleCounts[i]
			if n > len(all) {
				n = len(all)
			}
			return g, all[:n], eip.Options{N: 8, Eta: 1.5}
		})
}

// Fig5k: Match varying ||Σ|| (Google+-like), n = 8.
func Fig5k(sc Scale) (Figure, error) {
	g, syms := GplusGraph(sc.GplusUsers, sc.Seed)
	all := eipRules(g, gen.GplusPredicates(syms)[0], maxInt(sc.RuleCounts), sc.Seed)
	return eipSweep("5k", "Match: varying ||Σ|| (Google+)", "||Σ||", intStrings(sc.RuleCounts),
		func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
			n := sc.RuleCounts[i]
			if n > len(all) {
				n = len(all)
			}
			return g, all[:n], eip.Options{N: 8, Eta: 1.5}
		})
}

// Fig5l: Match varying d (Pokec-like): rules generated with growing radius.
func Fig5l(sc Scale) (Figure, error) {
	g, syms := PokecGraph(sc.PokecUsers, sc.Seed)
	pred := gen.PokecPredicates(syms)[0]
	return eipSweep("5l", "Match: varying d (Pokec)", "d", intStrings(sc.Ds),
		func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
			d := sc.Ds[i]
			rules := gen.Rules(g, pred, gen.RuleGenParams{
				Count: 10, VP: 2 + d, EP: 3 + d, Seed: sc.Seed + int64(d),
			})
			return g, rules, eip.Options{N: 8, Eta: 1.5}
		})
}

// Fig5m: Match varying d (Google+-like).
func Fig5m(sc Scale) (Figure, error) {
	g, syms := GplusGraph(sc.GplusUsers, sc.Seed)
	pred := gen.GplusPredicates(syms)[0]
	return eipSweep("5m", "Match: varying d (Google+)", "d", intStrings(sc.Ds),
		func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
			d := sc.Ds[i]
			rules := gen.Rules(g, pred, gen.RuleGenParams{
				Count: 10, VP: 2 + d, EP: 3 + d, Seed: sc.Seed + int64(d),
			})
			return g, rules, eip.Options{N: 8, Eta: 1.5}
		})
}

// Fig5n: Match varying n on the largest synthetic graph.
func Fig5n(sc Scale) (Figure, error) {
	size := sc.SynSizes[len(sc.SynSizes)-1]
	g, _ := SyntheticGraph(size[0], size[1], sc.Seed)
	pred := SyntheticPredicate(g)
	rules := eipRules(g, pred, 24, sc.Seed)
	return eipSweep("5n", "Match: varying n (Synthetic)", "n", intStrings(sc.Ns),
		func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
			return g, rules, eip.Options{N: sc.Ns[i], Eta: 1.5}
		})
}

// Fig5o: Match varying |G| on synthetic graphs, n = 4.
func Fig5o(sc Scale) (Figure, error) {
	xs := make([]string, len(sc.SynSizes))
	for i, s := range sc.SynSizes {
		xs[i] = fmt.Sprintf("(%d,%d)", s[0], s[1])
	}
	return eipSweep("5o", "Match: varying |G| (Synthetic)", "|G|", xs,
		func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
			g, _ := SyntheticGraph(sc.SynSizes[i][0], sc.SynSizes[i][1], sc.Seed)
			pred := SyntheticPredicate(g)
			rules := eipRules(g, pred, 24, sc.Seed)
			return g, rules, eip.Options{N: 4, Eta: 1.5}
		})
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
