package gen

import (
	"fmt"
	"math/rand"

	"gpar/internal/graph"
)

// Synthetic builds the random graphs of the paper's synthetic experiments:
// G = (V, E, L) controlled by |V| and |E|, with labels drawn from an
// alphabet of 100 labels (90 node labels, 10 edge labels). Edges follow a
// preferential-attachment-flavoured distribution so degree skew resembles
// social graphs. Deterministic for a fixed seed.
func Synthetic(syms *graph.Symbols, nV, nE int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(syms)
	syms = g.Symbols()
	nodeLabels := make([]graph.Label, 90)
	for i := range nodeLabels {
		nodeLabels[i] = syms.Intern(fmt.Sprintf("L%02d", i))
	}
	edgeLabels := make([]graph.Label, 10)
	for i := range edgeLabels {
		edgeLabels[i] = syms.Intern(fmt.Sprintf("e%d", i))
	}
	for i := 0; i < nV; i++ {
		// Uniform label choice over the 90-label alphabet keeps patterns
		// selective, as in the paper's synthetic setup.
		g.AddNodeL(nodeLabels[rng.Intn(len(nodeLabels))])
	}
	if nV == 0 {
		return g
	}
	// Preferential attachment on targets: keep a pool of endpoints.
	pool := make([]graph.NodeID, 0, 2*nE)
	for added := 0; added < nE; {
		from := graph.NodeID(rng.Intn(nV))
		var to graph.NodeID
		if len(pool) > 0 && rng.Float64() < 0.6 {
			to = pool[rng.Intn(len(pool))]
		} else {
			to = graph.NodeID(rng.Intn(nV))
		}
		if from == to {
			continue
		}
		l := edgeLabels[rng.Intn(len(edgeLabels))]
		if g.AddEdgeL(from, to, l) {
			added++
			pool = append(pool, from, to)
		}
	}
	return g
}
