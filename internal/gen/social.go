package gen

import (
	"fmt"
	"math/rand"

	"gpar/internal/core"
	"gpar/internal/graph"
)

// This file holds the stand-ins for the paper's two real-life datasets.
// Pokec (1.63M nodes of 269 types, 30.6M edges of 11 types) and Google+
// (4M entities of 5 types, 53.5M links of 5 types) are replaced by
// generators that reproduce their label-alphabet shape, degree skew and —
// crucially for mining — the *regularities* the paper's case study reports
// (R9: friends' hobbies predict music taste; R10: friends' professional
// books predict personal-development books; R11: employer+school predict
// major). Sizes are parameters so experiments can sweep them.

// Pokec-like label/edge vocabulary.
var (
	pokecMusic      = []string{"Disco", "Rock", "Pop", "Folk", "HipHop", "Jazz", "Metal", "Techno"}
	pokecHobbies    = []string{"party", "listen to music", "sports", "reading", "travel", "gaming", "cooking", "movies"}
	pokecBooks      = []string{"profession development", "personal development", "fiction", "history", "scifi", "biography"}
	pokecCityCount  = 24
	gplusSchools    = []string{"CMU", "MIT", "Stanford", "UW", "Berkeley", "Edinburgh", "Tsinghua", "ETH"}
	gplusEmployers  = []string{"Microsoft", "Google", "Amazon", "IBM", "Oracle", "Apple", "Meta", "Intel"}
	gplusMajors     = []string{"Computer Science", "EE", "Math", "Physics", "Biology", "Economics"}
	gplusCityCount  = 16
	followReciprocP = 0.35
)

// PokecParams controls the Pokec-like generator.
type PokecParams struct {
	Users int
	// AvgFollows is the mean out-degree of the follow relation.
	AvgFollows int
	// Homophily is the probability that a user copies an interest from a
	// followed user — the source of mineable association rules.
	Homophily float64
	Seed      int64
}

// DefaultPokec returns parameters scaled to the given user count.
func DefaultPokec(users int, seed int64) PokecParams {
	return PokecParams{Users: users, AvgFollows: 7, Homophily: 0.55, Seed: seed}
}

// Pokec builds a Pokec-like social graph: typed users with hobby, music and
// book interests plus residence, and a scale-free follow relation with
// homophily so that rules in the spirit of the paper's R9/R10 hold with
// high confidence while counterexamples exist.
func Pokec(syms *graph.Symbols, p PokecParams) *graph.Graph {
	rng := rand.New(rand.NewSource(p.Seed))
	g := graph.New(syms)

	music := internAll(g, "music:", pokecMusic)
	hobby := internAll(g, "hobby:", pokecHobbies)
	book := internAll(g, "book:", pokecBooks)
	var cities []graph.NodeID
	for i := 0; i < pokecCityCount; i++ {
		cities = append(cities, g.AddNode(fmt.Sprintf("city:%02d", i)))
	}

	users := make([]graph.NodeID, p.Users)
	for i := range users {
		users[i] = g.AddNode("user")
	}
	// Scale-free follows via preferential attachment.
	pool := make([]int, 0, p.Users*p.AvgFollows)
	for i, u := range users {
		g.AddEdge(u, cities[rng.Intn(len(cities))], "live_in")
		nf := 1 + rng.Intn(2*p.AvgFollows-1)
		for f := 0; f < nf; f++ {
			var ti int
			if len(pool) > 0 && rng.Float64() < 0.7 {
				ti = pool[rng.Intn(len(pool))]
			} else {
				ti = rng.Intn(p.Users)
			}
			if ti == i {
				continue
			}
			if g.AddEdge(u, users[ti], "follow") {
				pool = append(pool, i, ti)
				if rng.Float64() < followReciprocP {
					g.AddEdge(users[ti], u, "follow")
				}
			}
		}
	}
	// Interests: a base draw plus homophily copying from followees.
	for i, u := range users {
		g.AddEdge(u, hobby[rng.Intn(len(hobby))], "hobby")
		if rng.Float64() < 0.6 {
			g.AddEdge(u, music[rng.Intn(len(music))], "like_music")
		}
		if rng.Float64() < 0.5 {
			g.AddEdge(u, book[rng.Intn(len(book))], "like_book")
		}
		if rng.Float64() < p.Homophily {
			// Copy one interest from a random followee, creating the
			// friend-influence regularity of rules R9/R10.
			outs := g.Out(u)
			var followees []graph.NodeID
			for _, e := range outs {
				if g.LabelName(u) == "user" && g.LabelName(e.To) == "user" {
					followees = append(followees, e.To)
				}
			}
			if len(followees) > 0 {
				src := followees[rng.Intn(len(followees))]
				for _, e := range g.Out(src) {
					ln := syms.Name(e.Label)
					if ln == "like_music" || ln == "like_book" || ln == "hobby" {
						g.AddEdgeL(u, e.To, e.Label)
						break
					}
				}
			}
		}
		_ = i
	}
	return g
}

// PokecPredicates returns the mining predicates used by the Pokec-like
// experiments: like_music(user, music:Disco) in the spirit of R9, plus a
// book predicate in the spirit of R10.
func PokecPredicates(syms *graph.Symbols) []core.Predicate {
	var out []core.Predicate
	for _, m := range []string{"music:Disco", "music:Rock"} {
		out = append(out, core.Predicate{
			XLabel:    syms.Intern("user"),
			EdgeLabel: syms.Intern("like_music"),
			YLabel:    syms.Intern(m),
		})
	}
	for _, b := range []string{"book:personal development", "book:fiction"} {
		out = append(out, core.Predicate{
			XLabel:    syms.Intern("user"),
			EdgeLabel: syms.Intern("like_book"),
			YLabel:    syms.Intern(b),
		})
	}
	out = append(out, core.Predicate{
		XLabel:    syms.Intern("user"),
		EdgeLabel: syms.Intern("hobby"),
		YLabel:    syms.Intern("hobby:party"),
	})
	return out
}

// GplusParams controls the Google+-like generator.
type GplusParams struct {
	Users     int
	AvgFollow int
	Homophily float64
	Seed      int64
}

// DefaultGplus returns parameters scaled to the given user count.
func DefaultGplus(users int, seed int64) GplusParams {
	return GplusParams{Users: users, AvgFollow: 6, Homophily: 0.6, Seed: seed}
}

// Gplus builds a Google+-like social-attribute graph: 5 node types (user,
// school, employer, major, city) and 5 edge types (follow, school,
// employer, major, live_in), with alumni/colleague homophily so rules like
// the paper's R11 hold.
func Gplus(syms *graph.Symbols, p GplusParams) *graph.Graph {
	rng := rand.New(rand.NewSource(p.Seed))
	g := graph.New(syms)

	schools := internAll(g, "school:", gplusSchools)
	employers := internAll(g, "employer:", gplusEmployers)
	majors := internAll(g, "major:", gplusMajors)
	var cities []graph.NodeID
	for i := 0; i < gplusCityCount; i++ {
		cities = append(cities, g.AddNode(fmt.Sprintf("city:%02d", i)))
	}

	users := make([]graph.NodeID, p.Users)
	for i := range users {
		users[i] = g.AddNode("user")
	}
	// Assign attributes with school->major correlation (the R11 shape:
	// CMU + Microsoft people tend to be CS majors).
	si := make([]int, p.Users)
	for i, u := range users {
		si[i] = rng.Intn(len(schools))
		g.AddEdge(u, schools[si[i]], "school")
		g.AddEdge(u, employers[rng.Intn(len(employers))], "employer")
		g.AddEdge(u, cities[rng.Intn(len(cities))], "live_in")
		var mj graph.NodeID
		if rng.Float64() < p.Homophily {
			// Major correlates with school index.
			mj = majors[si[i]%len(majors)]
		} else {
			mj = majors[rng.Intn(len(majors))]
		}
		if rng.Float64() < 0.8 {
			g.AddEdge(u, mj, "major")
		}
	}
	// Follows with alumni homophily.
	pool := make([]int, 0, p.Users*p.AvgFollow)
	for i, u := range users {
		nf := 1 + rng.Intn(2*p.AvgFollow-1)
		for f := 0; f < nf; f++ {
			var ti int
			switch {
			case len(pool) > 0 && rng.Float64() < 0.5:
				ti = pool[rng.Intn(len(pool))]
			default:
				ti = rng.Intn(p.Users)
			}
			if ti == i {
				continue
			}
			// Prefer same-school targets (alumni homophily).
			if si[ti] != si[i] && rng.Float64() < 0.5 {
				continue
			}
			if g.AddEdge(u, users[ti], "follow") {
				pool = append(pool, i, ti)
			}
		}
	}
	return g
}

// GplusPredicates returns the Google+-like mining predicates (the R11
// shape: major(user, Computer Science), etc.).
func GplusPredicates(syms *graph.Symbols) []core.Predicate {
	var out []core.Predicate
	for _, m := range []string{"major:Computer Science", "major:EE"} {
		out = append(out, core.Predicate{
			XLabel:    syms.Intern("user"),
			EdgeLabel: syms.Intern("major"),
			YLabel:    syms.Intern(m),
		})
	}
	for _, e := range []string{"employer:Microsoft", "employer:Google"} {
		out = append(out, core.Predicate{
			XLabel:    syms.Intern("user"),
			EdgeLabel: syms.Intern("employer"),
			YLabel:    syms.Intern(e),
		})
	}
	out = append(out, core.Predicate{
		XLabel:    syms.Intern("user"),
		EdgeLabel: syms.Intern("school"),
		YLabel:    syms.Intern("school:CMU"),
	})
	return out
}

func internAll(g *graph.Graph, prefix string, names []string) []graph.NodeID {
	out := make([]graph.NodeID, len(names))
	for i, n := range names {
		out[i] = g.AddNode(prefix + n)
	}
	return out
}
