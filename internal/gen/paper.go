// Package gen builds the data graphs and rule sets used by tests, examples
// and the benchmark harness: the paper's running-example fixtures (graphs G1
// and G2 of Fig. 2, rules R1 and R4–R8 of Figs. 1 and 3), synthetic graphs,
// and Pokec-like / Google+-like social graphs standing in for the paper's
// real-life datasets.
package gen

import (
	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// G1Fixture is the restaurant recommendation network G1 of Fig. 2, with
// every node exposed by name so tests can assert the paper's exact numbers:
// Q1(x,G1) = {cust1, cust2, cust3, cust5}, supp(R1,G1) = 3,
// supp(q,G1) = 5, supp(q̄,G1) = 1, conf(R1,G1) = 0.6, conf(R5) = 0.8,
// conf(R6) = 0.4, conf(R7) = 0.6, conf(R8) = 0.2.
type G1Fixture struct {
	G     *graph.Graph
	Cust  [7]graph.NodeID // Cust[1..6]; index 0 unused
	NY    graph.NodeID
	LA    graph.NodeID
	FrNY  [3]graph.NodeID // fr1..fr3, liked by cust1-cust3, in NY
	FrLA  [3]graph.NodeID // fr4..fr6, liked by cust5, cust6, in LA
	LeB   graph.NodeID    // Le Bernardin (NY), visited by cust1-cust3
	Patin graph.NodeID    // Patina (LA), visited by cust4, cust6
	Asian graph.NodeID    // Asian restaurant (LA)
}

// Labels used by G1 and its rules.
const (
	LCust   = "cust"
	LCity   = "city"
	LFrench = "French restaurant"
	LAsian  = "Asian restaurant"
	EFriend = "friend"
	ELiveIn = "live_in"
	ELike   = "like"
	EIn     = "in"
	EVisit  = "visit"
)

// G1 builds the restaurant graph. The construction realizes every number
// the paper states about G1 (see G1Fixture).
func G1(syms *graph.Symbols) *G1Fixture {
	g := graph.New(syms)
	f := &G1Fixture{G: g}
	f.NY = g.AddNode(LCity)
	f.LA = g.AddNode(LCity)
	for i := 1; i <= 6; i++ {
		f.Cust[i] = g.AddNode(LCust)
	}
	for i := range f.FrNY {
		f.FrNY[i] = g.AddNode(LFrench)
		g.AddEdge(f.FrNY[i], f.NY, EIn)
	}
	for i := range f.FrLA {
		f.FrLA[i] = g.AddNode(LFrench)
		g.AddEdge(f.FrLA[i], f.LA, EIn)
	}
	f.LeB = g.AddNode(LFrench)
	g.AddEdge(f.LeB, f.NY, EIn)
	f.Patin = g.AddNode(LFrench)
	g.AddEdge(f.Patin, f.LA, EIn)
	f.Asian = g.AddNode(LAsian)
	g.AddEdge(f.Asian, f.LA, EIn)

	friends := func(a, b graph.NodeID) {
		g.AddEdge(a, b, EFriend)
		g.AddEdge(b, a, EFriend)
	}
	friends(f.Cust[1], f.Cust[2])
	friends(f.Cust[2], f.Cust[3])
	friends(f.Cust[5], f.Cust[6])
	friends(f.Cust[4], f.Cust[6])

	// Residence. cust4 has no live_in edge (incomplete data), which keeps
	// it out of the radius-2 rules R1, R7 and R8 as the paper requires.
	g.AddEdge(f.Cust[1], f.NY, ELiveIn)
	g.AddEdge(f.Cust[2], f.NY, ELiveIn)
	g.AddEdge(f.Cust[3], f.NY, ELiveIn)
	g.AddEdge(f.Cust[5], f.LA, ELiveIn)
	g.AddEdge(f.Cust[6], f.LA, ELiveIn)

	// Shared interests: cust1-cust3 like the 3 NY French restaurants;
	// cust5 and cust6 like the 3 LA ones.
	for _, fr := range f.FrNY {
		g.AddEdge(f.Cust[1], fr, ELike)
		g.AddEdge(f.Cust[2], fr, ELike)
		g.AddEdge(f.Cust[3], fr, ELike)
	}
	for _, fr := range f.FrLA {
		g.AddEdge(f.Cust[5], fr, ELike)
		g.AddEdge(f.Cust[6], fr, ELike)
	}
	// Asian-restaurant interests drive rules R6 and R8.
	g.AddEdge(f.Cust[4], f.Asian, ELike)
	g.AddEdge(f.Cust[5], f.Asian, ELike)
	g.AddEdge(f.Cust[6], f.Asian, ELike)

	// Visits: supp(q,G1) = 5 (cust1-cust4, cust6); cust5 visits only the
	// Asian restaurant, making it the single supp(q̄,G1) witness.
	g.AddEdge(f.Cust[1], f.LeB, EVisit)
	g.AddEdge(f.Cust[2], f.LeB, EVisit)
	g.AddEdge(f.Cust[3], f.LeB, EVisit)
	g.AddEdge(f.Cust[4], f.Patin, EVisit)
	g.AddEdge(f.Cust[6], f.Patin, EVisit)
	g.AddEdge(f.Cust[5], f.Asian, EVisit)
	return f
}

// VisitPredicate is q(x, y) = visit(cust, French restaurant), the event all
// of R1 and R5-R8 pertain to.
func VisitPredicate(syms *graph.Symbols) core.Predicate {
	return core.Predicate{
		XLabel:    syms.Intern(LCust),
		EdgeLabel: syms.Intern(EVisit),
		YLabel:    syms.Intern(LFrench),
	}
}

// R1 builds the GPAR of Fig. 1(a): friends in the same city sharing 3
// French restaurants; x' visits new restaurant y in the city ⇒ x visits y.
func R1(syms *graph.Symbols) *core.Rule {
	p := pattern.New(syms)
	x := p.AddNode(LCust)
	x2 := p.AddNode(LCust)
	city := p.AddNode(LCity)
	fr3 := p.AddNode(LFrench)
	p.SetMult(fr3, 3)
	y := p.AddNode(LFrench)
	p.X, p.Y = x, y
	p.AddEdge(x, x2, EFriend)
	p.AddEdge(x2, x, EFriend)
	p.AddEdge(x, city, ELiveIn)
	p.AddEdge(x2, city, ELiveIn)
	p.AddEdge(x, fr3, ELike)
	p.AddEdge(x2, fr3, ELike)
	p.AddEdge(fr3, city, EIn)
	p.AddEdge(y, city, EIn)
	p.AddEdge(x2, y, EVisit)
	return &core.Rule{Q: p, Pred: VisitPredicate(syms)}
}

// R5 builds the radius-1-seeded GPAR of Fig. 3: x friend x', x' likes two
// French restaurants and visits y ⇒ x visits y. R5(x,G1) = cust1-cust4,
// conf = 0.8.
func R5(syms *graph.Symbols) *core.Rule {
	p := pattern.New(syms)
	x := p.AddNode(LCust)
	x2 := p.AddNode(LCust)
	fr2 := p.AddNode(LFrench)
	p.SetMult(fr2, 2)
	y := p.AddNode(LFrench)
	p.X, p.Y = x, y
	p.AddEdge(x, x2, EFriend)
	p.AddEdge(x2, fr2, ELike)
	p.AddEdge(x2, y, EVisit)
	return &core.Rule{Q: p, Pred: VisitPredicate(syms)}
}

// R6 builds Fig. 3's R6: x friend x', x' likes an Asian restaurant and
// visits French restaurant y ⇒ x visits y. R6(x,G1) = {cust4, cust6},
// conf = 0.4.
func R6(syms *graph.Symbols) *core.Rule {
	p := pattern.New(syms)
	x := p.AddNode(LCust)
	x2 := p.AddNode(LCust)
	as := p.AddNode(LAsian)
	y := p.AddNode(LFrench)
	p.X, p.Y = x, y
	p.AddEdge(x, x2, EFriend)
	p.AddEdge(x2, as, ELike)
	p.AddEdge(x2, y, EVisit)
	return &core.Rule{Q: p, Pred: VisitPredicate(syms)}
}

// R7 builds Fig. 3's R7: R5 plus residence and locality constraints.
// R7(x,G1) = {cust1, cust2, cust3}, conf = 0.6.
func R7(syms *graph.Symbols) *core.Rule {
	p := pattern.New(syms)
	x := p.AddNode(LCust)
	x2 := p.AddNode(LCust)
	city := p.AddNode(LCity)
	fr2 := p.AddNode(LFrench)
	p.SetMult(fr2, 2)
	y := p.AddNode(LFrench)
	p.X, p.Y = x, y
	p.AddEdge(x, x2, EFriend)
	p.AddEdge(x, city, ELiveIn)
	p.AddEdge(x2, city, ELiveIn)
	p.AddEdge(x2, fr2, ELike)
	p.AddEdge(fr2, city, EIn)
	p.AddEdge(y, city, EIn)
	p.AddEdge(x2, y, EVisit)
	return &core.Rule{Q: p, Pred: VisitPredicate(syms)}
}

// R8 builds Fig. 3's R8: x friend x' living in the same city, x' likes an
// Asian restaurant, French restaurant y is in the city ⇒ x visits y.
// R8(x,G1) = {cust6}, conf = 0.2.
func R8(syms *graph.Symbols) *core.Rule {
	p := pattern.New(syms)
	x := p.AddNode(LCust)
	x2 := p.AddNode(LCust)
	city := p.AddNode(LCity)
	as := p.AddNode(LAsian)
	y := p.AddNode(LFrench)
	p.X, p.Y = x, y
	p.AddEdge(x, x2, EFriend)
	p.AddEdge(x, city, ELiveIn)
	p.AddEdge(x2, city, ELiveIn)
	p.AddEdge(x2, as, ELike)
	p.AddEdge(y, city, EIn)
	return &core.Rule{Q: p, Pred: VisitPredicate(syms)}
}

// G2Fixture is the social-accounts graph G2 of Fig. 2 (fake-account
// detection): supp(R4,G2) = supp(Q4,G2) = 3 with matches acct1-acct3.
type G2Fixture struct {
	G     *graph.Graph
	Acct  [5]graph.NodeID // Acct[1..4]
	Blog  [8]graph.NodeID // Blog[1..7]
	K1    graph.NodeID    // keyword "claim a prize"
	K2    graph.NodeID    // keyword "lottery rules"
	Fake  graph.NodeID
	Liked [2]graph.NodeID // the two blogs shared by acct1-acct3
}

// Labels used by G2 and rule R4.
const (
	LAcct     = "acct"
	LBlog     = "blog"
	LKeyword  = "keyword"
	LFake     = "fake"
	EPost     = "post"
	ELikeBlog = "like"
	EContains = "contains"
	EIsA      = "is_a"
)

// G2 builds the accounts/blogs graph.
func G2(syms *graph.Symbols) *G2Fixture {
	g := graph.New(syms)
	f := &G2Fixture{G: g}
	f.Fake = g.AddNode(LFake)
	for i := 1; i <= 4; i++ {
		f.Acct[i] = g.AddNode(LAcct)
	}
	for i := 1; i <= 7; i++ {
		f.Blog[i] = g.AddNode(LBlog)
	}
	f.K1 = g.AddNode(LKeyword)
	f.K2 = g.AddNode(LKeyword)

	// All four accounts are confirmed fake; acct4 is the seed.
	for i := 1; i <= 4; i++ {
		g.AddEdge(f.Acct[i], f.Fake, EIsA)
	}
	// Shared liked blogs p3, p4 (the P1..Pk of the rule, k = 2); acct4 has
	// no like edges, which keeps it out of Q4(x,G2).
	f.Liked = [2]graph.NodeID{f.Blog[3], f.Blog[4]}
	for i := 1; i <= 3; i++ {
		g.AddEdge(f.Acct[i], f.Blog[3], ELikeBlog)
		g.AddEdge(f.Acct[i], f.Blog[4], ELikeBlog)
	}
	// Posts and their keywords.
	g.AddEdge(f.Acct[1], f.Blog[1], EPost)
	g.AddEdge(f.Acct[2], f.Blog[2], EPost)
	g.AddEdge(f.Acct[3], f.Blog[5], EPost)
	g.AddEdge(f.Acct[4], f.Blog[6], EPost)
	g.AddEdge(f.Acct[2], f.Blog[7], EPost)
	g.AddEdge(f.Blog[1], f.K1, EContains)
	g.AddEdge(f.Blog[2], f.K1, EContains)
	g.AddEdge(f.Blog[5], f.K2, EContains)
	g.AddEdge(f.Blog[6], f.K1, EContains)
	g.AddEdge(f.Blog[7], f.K2, EContains)
	return f
}

// R4 builds the GPAR of Fig. 1(d) with k = 2: if x' is a fake account, x
// and x' like the same two blogs, and each posts a blog containing the same
// keyword, then x is a fake account. The consequent is is_a(x, fake) with
// the value binding y = fake.
func R4(syms *graph.Symbols) *core.Rule {
	p := pattern.New(syms)
	x := p.AddNode(LAcct)
	x2 := p.AddNode(LAcct)
	fake := p.AddNode(LFake)
	shared := p.AddNode(LBlog)
	p.SetMult(shared, 2)
	y1 := p.AddNode(LBlog)
	y2 := p.AddNode(LBlog)
	kw := p.AddNode(LKeyword)
	p.X, p.Y = x, fake
	p.AddEdge(x2, fake, EIsA)
	p.AddEdge(x, shared, ELikeBlog)
	p.AddEdge(x2, shared, ELikeBlog)
	p.AddEdge(x, y1, EPost)
	p.AddEdge(x2, y2, EPost)
	p.AddEdge(y1, kw, EContains)
	p.AddEdge(y2, kw, EContains)
	return &core.Rule{Q: p, Pred: core.Predicate{
		XLabel:    syms.Intern(LAcct),
		EdgeLabel: syms.Intern(EIsA),
		YLabel:    syms.Intern(LFake),
	}}
}
