package gen

import (
	"math/rand"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/pattern"
)

// RuleGenParams controls the GPAR generator of Section 6's setup ("we
// generated GPARs R controlled by the numbers |Vp| and |Ep| of nodes and
// edges in PR"): rules are extracted from actual neighborhoods of the data
// graph so they have non-trivial supports, exactly like the paper's
// "meaningful GPARs with labels drawn from their data".
type RuleGenParams struct {
	Count  int
	VP, EP int // target |Vp|, |Ep| of the antecedent
	Seed   int64
}

// Rules samples GPARs for pred from g by growing patterns along data edges
// around randomly chosen Pq members. All returned rules are connected,
// nontrivial, pertain to pred, and have at least one match in g by
// construction.
func Rules(g *graph.Graph, pred core.Predicate, p RuleGenParams) []*core.Rule {
	rng := rand.New(rand.NewSource(p.Seed))
	seeds := corePq(g, pred)
	var out []*core.Rule
	if len(seeds) == 0 {
		return out
	}
	seen := make(map[string]bool)
	for attempt := 0; attempt < p.Count*20 && len(out) < p.Count; attempt++ {
		vx := seeds[rng.Intn(len(seeds))]
		r := growRule(g, pred, vx, p.VP, p.EP, rng)
		if r == nil || !r.Nontrivial() {
			continue
		}
		sig := r.Q.Signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, r)
	}
	return out
}

// growRule builds one antecedent by a randomized BFS over g starting at vx,
// mirroring how real rules describe a candidate's neighborhood. Consequent
// edges (vx -q-> y-label) are excluded from the antecedent; one y-labeled
// node reached through another path may be designated as y.
func growRule(g *graph.Graph, pred core.Predicate, vx graph.NodeID, nv, ne int, rng *rand.Rand) *core.Rule {
	q := pattern.New(g.Symbols())
	px := q.AddNodeL(g.Label(vx))
	q.X = px
	nodeOf := map[graph.NodeID]int{vx: px}
	frontier := []graph.NodeID{vx}
	edges := 0
	// The walk may revisit edges already in the pattern; bound the number
	// of attempts so sparse neighborhoods terminate.
	for iter := 0; len(frontier) > 0 && (q.NumNodes() < nv || edges < ne) && iter < 8*(nv+ne); iter++ {
		v := frontier[rng.Intn(len(frontier))]
		pu := nodeOf[v]
		// Collect candidate incident data edges.
		type cand struct {
			other graph.NodeID
			label graph.Label
			out   bool
		}
		var cands []cand
		for _, e := range g.Out(v) {
			// Never put the consequent itself into the antecedent.
			if pu == px && e.Label == pred.EdgeLabel && g.Label(e.To) == pred.YLabel {
				continue
			}
			cands = append(cands, cand{e.To, e.Label, true})
		}
		for _, e := range g.In(v) {
			cands = append(cands, cand{e.To, e.Label, false})
		}
		if len(cands) == 0 {
			// Remove v from the frontier.
			frontier = removeNode(frontier, v)
			continue
		}
		c := cands[rng.Intn(len(cands))]
		pother, ok := nodeOf[c.other]
		if !ok {
			if q.NumNodes() >= nv {
				frontier = removeNode(frontier, v)
				continue
			}
			pother = q.AddNodeL(g.Label(c.other))
			nodeOf[c.other] = pother
			frontier = append(frontier, c.other)
		}
		var added bool
		if c.out {
			if !q.HasEdge(pu, pother, c.label) {
				q.AddEdgeL(pu, pother, c.label)
				added = true
			}
		} else {
			if !q.HasEdge(pother, pu, c.label) {
				q.AddEdgeL(pother, pu, c.label)
				added = true
			}
		}
		if added {
			edges++
		}
		if edges >= ne && q.NumNodes() >= 2 {
			break
		}
	}
	if q.NumEdges() == 0 {
		return nil
	}
	// Optionally designate a y-labeled node reached via the walk.
	for u := 0; u < q.NumNodes(); u++ {
		if u != q.X && q.Label(u) == pred.YLabel {
			q.Y = u
			break
		}
	}
	r := &core.Rule{Q: q, Pred: pred}
	if r.Q.Y != pattern.NoNode && r.Q.HasEdge(r.Q.X, r.Q.Y, pred.EdgeLabel) {
		return nil
	}
	return r
}

func removeNode(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	for i, u := range s {
		if u == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// corePq re-implements core.Pq locally to avoid an import cycle in tests
// that already use the core package (gen may be imported from core tests).
func corePq(g *graph.Graph, pred core.Predicate) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range g.NodesWithLabel(pred.XLabel) {
		for _, e := range g.Out(v) {
			if e.Label == pred.EdgeLabel && g.Label(e.To) == pred.YLabel {
				out = append(out, v)
				break
			}
		}
	}
	return out
}
