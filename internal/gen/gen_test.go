package gen_test

import (
	"testing"

	"gpar/internal/core"
	. "gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
)

func TestSyntheticSizes(t *testing.T) {
	g := Synthetic(nil, 1000, 2000, 1)
	if g.NumNodes() != 1000 {
		t.Errorf("nodes = %d want 1000", g.NumNodes())
	}
	if g.NumEdges() != 2000 {
		t.Errorf("edges = %d want 2000", g.NumEdges())
	}
	if g.Size() != 3000 {
		t.Errorf("|G| = %d want 3000", g.Size())
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(nil, 200, 400, 7)
	b := Synthetic(nil, 200, 400, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ across same-seed runs")
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.LabelName(graph.NodeID(v)) != b.LabelName(graph.NodeID(v)) {
			t.Fatal("labels differ across same-seed runs")
		}
	}
	c := Synthetic(nil, 200, 400, 8)
	same := true
	for v := 0; v < a.NumNodes() && same; v++ {
		if a.LabelName(graph.NodeID(v)) != c.LabelName(graph.NodeID(v)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical node labels")
	}
}

func TestSyntheticEmpty(t *testing.T) {
	g := Synthetic(nil, 0, 0, 1)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Error("empty synthetic graph not empty")
	}
}

func TestPokecShape(t *testing.T) {
	syms := graph.NewSymbols()
	g := Pokec(syms, DefaultPokec(500, 42))
	users := g.NodesWithLabel(syms.Lookup("user"))
	if len(users) != 500 {
		t.Fatalf("users = %d want 500", len(users))
	}
	// Every user lives somewhere and has a hobby.
	liveIn := syms.Lookup("live_in")
	hobby := syms.Lookup("hobby")
	follow := syms.Lookup("follow")
	follows := 0
	for _, u := range users {
		if !g.HasOutLabel(u, liveIn) {
			t.Fatalf("user %d has no residence", u)
		}
		if !g.HasOutLabel(u, hobby) {
			t.Fatalf("user %d has no hobby", u)
		}
		for _, e := range g.Out(u) {
			if e.Label == follow {
				follows++
			}
		}
	}
	if follows < 500 {
		t.Errorf("too few follow edges: %d", follows)
	}
	// The mining predicates must have support.
	for _, pred := range PokecPredicates(syms) {
		if len(core.Pq(g, pred)) == 0 {
			t.Errorf("predicate %s has no support", pred.String(syms))
		}
	}
}

func TestGplusShape(t *testing.T) {
	syms := graph.NewSymbols()
	g := Gplus(syms, DefaultGplus(500, 42))
	users := g.NodesWithLabel(syms.Lookup("user"))
	if len(users) != 500 {
		t.Fatalf("users = %d want 500", len(users))
	}
	school := syms.Lookup("school")
	for _, u := range users {
		if !g.HasOutLabel(u, school) {
			t.Fatalf("user %d has no school", u)
		}
	}
	for _, pred := range GplusPredicates(syms) {
		if len(core.Pq(g, pred)) == 0 {
			t.Errorf("predicate %s has no support", pred.String(syms))
		}
	}
}

func TestRulesGenerator(t *testing.T) {
	syms := graph.NewSymbols()
	g := Pokec(syms, DefaultPokec(300, 7))
	pred := PokecPredicates(syms)[0]
	rules := Rules(g, pred, RuleGenParams{Count: 8, VP: 5, EP: 6, Seed: 3})
	if len(rules) == 0 {
		t.Fatal("no rules generated")
	}
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			t.Errorf("rule %d invalid: %v", i, err)
		}
		if !r.Nontrivial() {
			t.Errorf("rule %d trivial: %s", i, r)
		}
		if r.Pred != pred {
			t.Errorf("rule %d has wrong predicate", i)
		}
		// By construction the rule's antecedent matches at least one node.
		ms := match.MatchSet(r.Q, g, nil, match.Options{})
		if len(ms) == 0 {
			t.Errorf("rule %d has empty Q(x,G): %s", i, r)
		}
	}
	// Distinct signatures.
	sigs := map[string]bool{}
	for _, r := range rules {
		sigs[r.Q.Signature()] = true
	}
	if len(sigs) != len(rules) {
		t.Errorf("duplicate rules generated: %d distinct of %d", len(sigs), len(rules))
	}
}

func TestRulesGeneratorEmptyGraph(t *testing.T) {
	syms := graph.NewSymbols()
	g := graph.New(syms)
	pred := core.Predicate{XLabel: syms.Intern("user"), EdgeLabel: syms.Intern("e"), YLabel: syms.Intern("y")}
	if rules := Rules(g, pred, RuleGenParams{Count: 3, VP: 4, EP: 4, Seed: 1}); len(rules) != 0 {
		t.Errorf("rules from empty graph: %d", len(rules))
	}
}

// TestHomophilyCreatesRegularity: with homophily on, the Pokec-like graph
// must contain users whose followees share their music taste — the raw
// material of rule R9. We check the conditional frequency is above the
// base rate.
func TestHomophilyCreatesRegularity(t *testing.T) {
	syms := graph.NewSymbols()
	g := Pokec(syms, DefaultPokec(800, 11))
	users := g.NodesWithLabel(syms.Lookup("user"))
	follow := syms.Lookup("follow")
	likeMusic := syms.Lookup("like_music")
	disco := syms.Lookup("music:Disco")

	base, baseN := 0, 0
	cond, condN := 0, 0
	for _, u := range users {
		likesDisco := false
		for _, e := range g.Out(u) {
			if e.Label == likeMusic && e.To != u && g.Label(e.To) == disco {
				likesDisco = true
			}
		}
		baseN++
		if likesDisco {
			base++
		}
		// Does some followee like Disco?
		followeeLikes := false
		for _, e := range g.Out(u) {
			if e.Label != follow {
				continue
			}
			for _, e2 := range g.Out(e.To) {
				if e2.Label == likeMusic && g.Label(e2.To) == disco {
					followeeLikes = true
				}
			}
		}
		if followeeLikes {
			condN++
			if likesDisco {
				cond++
			}
		}
	}
	if baseN == 0 || condN == 0 {
		t.Skip("degenerate sample")
	}
	baseRate := float64(base) / float64(baseN)
	condRate := float64(cond) / float64(condN)
	if condRate <= baseRate {
		t.Errorf("homophily absent: P(disco|followee) = %v <= base %v", condRate, baseRate)
	}
}

func TestG1SerializationRoundTrip(t *testing.T) {
	syms := graph.NewSymbols()
	f := G1(syms)
	if f.G.NumNodes() == 0 {
		t.Fatal("empty G1")
	}
	// Sanity: supp(q) of the visit predicate is 5 (asserted in detail in
	// the core tests; here we just keep the fixture honest).
	if got := len(core.Pq(f.G, VisitPredicate(syms))); got != 5 {
		t.Errorf("supp(q,G1) = %d want 5", got)
	}
}
