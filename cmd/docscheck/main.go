// Command docscheck is the documentation gate wired into `make docs-check`
// and CI: it walks the given directory trees and fails (exit 1, one line
// per offender) if any Go package lacks a package-level doc comment. Test
// files and *_test packages are ignored; a package passes when at least one
// of its files carries a doc comment on the package clause.
//
// Usage: docscheck DIR ...
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck DIR ...")
		os.Exit(2)
	}
	var missing []string
	for _, root := range os.Args[1:] {
		dirs, err := goDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			ok, err := hasPackageDoc(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "docscheck:", err)
				os.Exit(2)
			}
			if !ok {
				missing = append(missing, dir)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "docscheck: %s: package has no package-level doc comment\n", dir)
		}
		os.Exit(1)
	}
}

// goDirs lists every directory under root that contains at least one
// non-test Go file.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
		return nil
	})
	return out, err
}

// hasPackageDoc reports whether any non-test file of the directory's
// primary package documents the package clause.
func hasPackageDoc(dir string) (bool, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return false, fmt.Errorf("%s: %w", dir, err)
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				return true, nil
			}
		}
	}
	return false, nil
}
