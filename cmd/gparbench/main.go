// Command gparbench regenerates the paper's tables and figures (Section 6)
// at laptop scale. See DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	gparbench                 # run everything at the default scale
//	gparbench -quick          # tiny smoke-test scale
//	gparbench -exp 5a,5h      # selected figures
//	gparbench -exp case       # the Fig. 5(g) case study
//	gparbench -exp precision  # the Exp-2 precision table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpar/internal/bench"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "use the tiny smoke-test scale")
		exp   = flag.String("exp", "all", "comma-separated experiment ids (5a..5o, 5x, case, precision, all)")
		csv   = flag.String("csv", "", "also append figure data as CSV to this file")
	)
	flag.Parse()
	sc := bench.DefaultScale()
	if *quick {
		sc = bench.QuickScale()
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	type figFn struct {
		id  string
		fn  func(bench.Scale) bench.Figure
		efn func(bench.Scale) (bench.Figure, error)
	}
	figs := []figFn{
		{id: "5a", fn: bench.Fig5a},
		{id: "5b", fn: bench.Fig5b},
		{id: "5c", fn: bench.Fig5c},
		{id: "5d", fn: bench.Fig5d},
		{id: "5e", fn: bench.Fig5e},
		{id: "5f", fn: bench.Fig5f},
		{id: "5x", fn: bench.Fig5x},
		{id: "5h", efn: bench.Fig5h},
		{id: "5i", efn: bench.Fig5i},
		{id: "5j", efn: bench.Fig5j},
		{id: "5k", efn: bench.Fig5k},
		{id: "5l", efn: bench.Fig5l},
		{id: "5m", efn: bench.Fig5m},
		{id: "5n", efn: bench.Fig5n},
		{id: "5o", efn: bench.Fig5o},
	}
	for _, f := range figs {
		if !all && !want[f.id] {
			continue
		}
		var fig bench.Figure
		var err error
		if f.fn != nil {
			fig = f.fn(sc)
		} else {
			fig, err = f.efn(sc)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "gparbench: figure %s: %v\n", f.id, err)
			os.Exit(1)
		}
		fig.Format(os.Stdout)
		fmt.Println()
		if *csv != "" {
			cf, err := os.OpenFile(*csv, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gparbench: %v\n", err)
				os.Exit(1)
			}
			if err := fig.WriteCSV(cf); err != nil {
				fmt.Fprintf(os.Stderr, "gparbench: %v\n", err)
			}
			cf.Close()
		}
	}
	if all || want["case"] || want["5g"] {
		bench.CaseStudy(os.Stdout, sc)
		fmt.Println()
	}
	if all || want["precision"] {
		fmt.Println("=== Exp-2 precision table (conf vs PCAconf vs Iconf) ===")
		tops := []int{10, 30, 60}
		if *quick {
			tops = []int{5, 10}
		}
		table := bench.Precision(sc, tops)
		table.Format(os.Stdout)
	}
}
