// Command gparmatch runs EIP — entity identification with GPARs (algorithm
// Match of the paper) — on a graph and a rule set, printing Σ(x,G,η).
//
// Usage:
//
//	gparmatch -graph graph.txt -rules rules.txt -eta 1.5 -n 8 [-algo match|matchc|disvf2]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/graph"
)

func main() {
	var (
		graphIn = flag.String("graph", "", "input graph file")
		rulesIn = flag.String("rules", "", "input rules file")
		eta     = flag.Float64("eta", 1.5, "confidence bound η")
		n       = flag.Int("n", 4, "workers")
		algo    = flag.String("algo", "match", "match | matchc | disvf2")
		verbose = flag.Bool("v", false, "print per-rule statistics")
	)
	flag.Parse()
	if *graphIn == "" || *rulesIn == "" {
		fmt.Fprintln(os.Stderr, "gparmatch: -graph and -rules are required")
		os.Exit(2)
	}
	syms := graph.NewSymbols()
	gf, err := os.Open(*graphIn)
	if err != nil {
		fatal(err)
	}
	g, err := graph.Read(gf, syms)
	gf.Close()
	if err != nil {
		fatal(err)
	}
	rf, err := os.Open(*rulesIn)
	if err != nil {
		fatal(err)
	}
	rules, err := core.ReadRules(rf, syms)
	rf.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; Σ: %d rules; η = %v; algo = %s\n",
		g.NumNodes(), g.NumEdges(), len(rules), *eta, *algo)

	opts := eip.Options{N: *n, Eta: *eta}
	start := time.Now()
	var res *eip.Result
	switch *algo {
	case "match":
		res, err = eip.Match(g, rules, opts)
	case "matchc":
		res, err = eip.Matchc(g, rules, opts)
	case "disvf2":
		res, err = eip.DisVF2(g, rules, opts)
	default:
		fatal(fmt.Errorf("unknown -algo %q", *algo))
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	applied := 0
	for i, pr := range res.PerRule {
		if pr.Applied {
			applied++
		}
		if *verbose {
			fmt.Printf("rule %2d: conf %.3f supp(R)=%d supp(Qq̄)=%d |Q(x,G)|=%d applied=%v\n",
				i, pr.Conf, pr.Stats.SuppR, pr.Stats.SuppQqb, pr.Stats.SuppQ, pr.Applied)
		}
	}
	fmt.Printf("applied %d/%d rules; identified %d potential customers in %s\n",
		applied, len(rules), len(res.Identified), elapsed.Round(time.Millisecond))
	if len(res.Identified) > 0 {
		limit := len(res.Identified)
		if limit > 20 {
			limit = 20
		}
		fmt.Printf("first %d: %v\n", limit, res.Identified[:limit])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gparmatch:", err)
	os.Exit(1)
}
