// Command gparworker is the distributed-DMine worker daemon: it listens for
// coordinator connections (gpard with -mine-workers, or gparmine -workers)
// and hosts mining jobs over the binary wire protocol. Each job ships this
// worker its graph fragment in the setup frame, so the daemon needs no graph
// file, no configuration beyond an address, and no state between jobs.
//
// Usage:
//
//	gparworker -addr :9090 [-idle-timeout 5m] [-max-frame 268435456] [-quiet]
//
// A fleet is one gparworker per fragment; the coordinator connects to all of
// them and drives BSP supersteps. See DESIGN.md ("Distributed DMine") for
// the protocol and failure semantics.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpar/internal/mine/remote"
	"gpar/internal/mine/wire"
)

func main() {
	var (
		addr     = flag.String("addr", ":9090", "listen address")
		idle     = flag.Duration("idle-timeout", 5*time.Minute, "drop a connection idle this long (0 = never)")
		maxFrame = flag.Int("max-frame", wire.DefaultMaxFrame, "largest accepted frame in bytes")
		quiet    = flag.Bool("quiet", false, "suppress per-connection logging")
	)
	flag.Parse()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	opts := remote.ServerOptions{
		MaxFrame:    *maxFrame,
		IdleTimeout: *idle,
	}
	if !*quiet {
		opts.Logf = log.Printf
	}
	log.Printf("gparworker: serving on %s", l.Addr())

	errc := make(chan error, 1)
	go func() { errc <- remote.Serve(l, opts) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		log.Printf("gparworker: received %v; closing", sig)
		l.Close()
		// In-flight jobs on accepted connections run to completion or until
		// the coordinator disconnects; only the accept loop stops.
		if err := <-errc; err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("gparworker: %v", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gparworker:", err)
	os.Exit(1)
}
