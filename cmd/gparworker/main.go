// Command gparworker is the distributed-DMine worker daemon: it listens for
// coordinator connections (gpard with -mine-workers, or gparmine -workers)
// and hosts mining jobs over the binary wire protocol. Each job ships this
// worker its graph fragment in the setup frame, so the daemon needs no graph
// file, no configuration beyond an address, and no state between jobs.
//
// Usage:
//
//	gparworker -addr :9090 [-idle-timeout 5m] [-max-frame 268435456]
//	           [-frag-cache 8] [-healthz :9091] [-quiet]
//
// A fleet is one gparworker per fragment; the coordinator connects to all of
// them and drives BSP supersteps. -healthz serves the worker's counters
// (connections, jobs, pings, fragment cache) as JSON over HTTP for fleet
// monitoring. See DESIGN.md ("Distributed DMine") for the protocol and
// failure semantics.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpar/internal/mine/remote"
	"gpar/internal/mine/wire"
)

func main() {
	var (
		addr      = flag.String("addr", ":9090", "listen address")
		idle      = flag.Duration("idle-timeout", 5*time.Minute, "drop a connection idle this long (0 = never)")
		maxFrame  = flag.Int("max-frame", wire.DefaultMaxFrame, "largest accepted frame in bytes")
		fragCache = flag.Int("frag-cache", 0, "fragment cache entries (0 = default 8, negative = off)")
		healthz   = flag.String("healthz", "", "serve GET /healthz and /stats on this address (e.g. :9091)")
		quiet     = flag.Bool("quiet", false, "suppress per-connection logging")
	)
	flag.Parse()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	opts := remote.ServerOptions{
		MaxFrame:     *maxFrame,
		IdleTimeout:  *idle,
		FragCacheCap: *fragCache,
	}
	if !*quiet {
		opts.Logf = log.Printf
	}
	sv := remote.NewService(opts)
	log.Printf("gparworker: serving on %s", l.Addr())

	if *healthz != "" {
		hl, err := net.Listen("tcp", *healthz)
		if err != nil {
			fatal(err)
		}
		mux := http.NewServeMux()
		stats := func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(map[string]any{"status": "ok", "worker": sv.Stats()})
		}
		mux.HandleFunc("GET /healthz", stats)
		mux.HandleFunc("GET /stats", stats)
		log.Printf("gparworker: health endpoint on %s", hl.Addr())
		go func() {
			if err := http.Serve(hl, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("gparworker: healthz: %v", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- sv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		log.Printf("gparworker: received %v; closing", sig)
		l.Close()
		// In-flight jobs on accepted connections run to completion or until
		// the coordinator disconnects; only the accept loop stops.
		if err := <-errc; err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("gparworker: %v", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gparworker:", err)
	os.Exit(1)
}
