// Command benchguard is the CI regression gate over committed bench
// artifacts: it reads BENCH_*.json files (as written by cmd/benchjson) and
// exits nonzero if any recorded speedup — or allocation-reduction ratio —
// has fallen below 1.0, i.e. if someone commits an artifact showing an
// optimized path slower, or allocating more, than its recorded baseline.
//
// A rewrite may deliberately trade allocations for time (e.g. the
// diversifier's memoized pair distances); such benchmarks are exempted from
// the allocation gate — never the speed gate — with -allow-alloc, so the
// waiver is explicit in the Makefile instead of implicit in the tool.
//
// Usage: benchguard [-allow-alloc Name1,Name2] BENCH_match.json BENCH_mine.json ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpar/internal/benchfmt"
)

func main() {
	allowAlloc := flag.String("allow-alloc", "",
		"comma-separated benchmark names exempt from the alloc_reduction >= 1.0 gate")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: benchguard [-allow-alloc names] BENCH_*.json ...")
		os.Exit(2)
	}
	waived := make(map[string]bool)
	for _, name := range strings.Split(*allowAlloc, ",") {
		if name = strings.TrimSpace(name); name != "" {
			waived[name] = true
		}
	}

	failed := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		var rep benchfmt.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", path, err)
			os.Exit(2)
		}
		checked, unbaselined := 0, 0
		for _, e := range rep.Benchmarks {
			if e.Base == nil {
				// A benchmark that did not exist at the baseline commit has
				// nothing to regress against: report it and move on, so adding
				// a benchmark never requires re-recording every baseline in
				// the same commit.
				unbaselined++
				fmt.Printf("benchguard: %s: %s is new (no baseline); not gated\n", path, e.Name)
				continue
			}
			checked++
			if e.Speedup < 1.0 {
				fmt.Fprintf(os.Stderr, "benchguard: %s: %s speedup %.2f < 1.0 vs %s\n",
					path, e.Name, e.Speedup, rep.BaselineCommit)
				failed = true
			}
			if e.AllocReduction != 0 && e.AllocReduction < 1.0 && !waived[e.Name] {
				fmt.Fprintf(os.Stderr, "benchguard: %s: %s alloc_reduction %.2f < 1.0 vs %s (allocation regression)\n",
					path, e.Name, e.AllocReduction, rep.BaselineCommit)
				failed = true
			}
		}
		// An artifact of nothing but new entries still passes — but an empty
		// artifact is a broken recording, not a tolerable one.
		if checked == 0 && unbaselined == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s: no benchmarks found\n", path)
			failed = true
		}
		fmt.Printf("benchguard: %s: %d baselined benchmarks checked (baseline %s)\n",
			path, checked, rep.BaselineCommit)
	}
	if failed {
		os.Exit(1)
	}
}
