// Command benchguard is the CI regression gate over committed bench
// artifacts: it reads BENCH_*.json files (as written by cmd/benchjson) and
// exits nonzero if any recorded speedup has fallen below 1.0 — i.e. if
// someone commits an artifact showing an optimized path slower than its
// recorded baseline. Allocation ratios are reported in the artifacts but
// not gated: some rewrites deliberately trade a few allocations for time
// (e.g. the diversifier's memoized pair distances).
//
// Usage: benchguard BENCH_match.json BENCH_mine.json ...
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"gpar/internal/benchfmt"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchguard BENCH_*.json ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		var rep benchfmt.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", path, err)
			os.Exit(2)
		}
		checked := 0
		for _, e := range rep.Benchmarks {
			if e.Base == nil {
				continue
			}
			checked++
			if e.Speedup < 1.0 {
				fmt.Fprintf(os.Stderr, "benchguard: %s: %s speedup %.2f < 1.0 vs %s\n",
					path, e.Name, e.Speedup, rep.BaselineCommit)
				failed = true
			}
		}
		if checked == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s: no baselined benchmarks found\n", path)
			failed = true
		}
		fmt.Printf("benchguard: %s: %d baselined benchmarks checked (baseline %s)\n",
			path, checked, rep.BaselineCommit)
	}
	if failed {
		os.Exit(1)
	}
}
