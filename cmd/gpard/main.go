// Command gpard is the GPAR serving daemon: it loads (or generates) a data
// graph, loads or mines a GPAR rule set, and serves entity-identification
// queries over HTTP until terminated — the "mine once, match many" serving
// shape of the paper's use cases. See internal/serve for the subsystem and
// DESIGN.md for the endpoint reference.
//
// Usage:
//
//	gpard -addr :8080 -graph graph.txt -rules rules.txt
//	gpard -addr :8080 -gen pokec -users 2000 -seed 1 \
//	      -pred "user,like_music,music:Disco" -mine -k 8 -sigma 20
//	gpard -addr :8080 -data-dir /var/lib/gpard -wal-sync always
//
// With -data-dir the daemon is durable: every snapshot swap is
// checkpointed to a checksummed snapshot file and every accepted delta
// batch is appended to a write-ahead log before it is acknowledged
// (-wal-sync controls the fsync policy: always | interval | none). On
// restart, if the directory holds a recoverable state, the daemon
// recovers it — newest valid snapshot plus WAL replay — and the
// -graph/-gen/-rules/-mine flags are skipped; corrupt files are
// quarantined as *.corrupt, never deleted. See DESIGN.md, "Durability &
// crash recovery".
//
// Endpoints:
//
//	POST /v1/identify     {"rules":[...keys], "eta":1.5}  → Σ(x,G,η)
//	GET  /v1/rules        browse the resident rule set
//	PUT  /v1/rules        hot-swap the rule set (core rule text format)
//	POST /v1/graph/delta  apply a mutation batch as a new snapshot generation
//	POST /v1/mine         async DMine job; {"install":true} hot-swaps on success
//	GET  /v1/jobs[/id]    job status
//	GET  /healthz         liveness + generation
//	GET  /stats           cache / batcher / request / delta counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
	"gpar/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphIn   = flag.String("graph", "", "input graph file (exclusive with -gen)")
		genKind   = flag.String("gen", "", "generate the graph: pokec | gplus | synthetic")
		users     = flag.Int("users", 2000, "user count for -gen pokec/gplus")
		nv        = flag.Int("v", 10000, "nodes for -gen synthetic")
		ne        = flag.Int("e", 20000, "edges for -gen synthetic")
		seed      = flag.Int64("seed", 1, "random seed for -gen")
		rulesIn   = flag.String("rules", "", "input rules file")
		predStr   = flag.String("pred", "", "predicate xLabel,edgeLabel,yLabel (required without -rules)")
		doMine    = flag.Bool("mine", false, "mine rules at startup with DMine")
		k         = flag.Int("k", 10, "top-k size for -mine")
		sigma     = flag.Int("sigma", 10, "support threshold σ for -mine")
		d         = flag.Int("d", 2, "radius bound for -mine")
		lambda    = flag.Float64("lambda", 0.5, "diversification balance λ for -mine")
		maxEd     = flag.Int("max-edges", 3, "antecedent edge budget for -mine")
		capRd     = flag.Int("cap", 100, "mining candidates per round (0 = unlimited)")
		workers   = flag.Int("n", 4, "graph fragments (partition width)")
		pool      = flag.Int("pool", 0, "matching concurrency bound (0 = GOMAXPROCS minus the mine share)")
		mineCPU   = flag.Float64("mine-share", 0, "fraction of GOMAXPROCS mine jobs may occupy together (0 = default 0.5)")
		cache     = flag.Int("cache", 256, "match-set cache capacity")
		window    = flag.Duration("batch-window", 0, "identify coalescing window (e.g. 2ms)")
		eta       = flag.Float64("eta", 1.0, "default confidence bound η")
		fleet     = flag.String("mine-workers", "", "comma-separated gparworker addresses; mine jobs run on this fleet")
		stepTO    = flag.Duration("mine-step-timeout", 0, "per-superstep worker deadline for -mine-workers (0 = 2m)")
		retries   = flag.Int("mine-retries", 0, "fleet attempts per mine job before in-process fallback (0 = default 3)")
		backoff   = flag.Duration("mine-retry-backoff", 0, "base backoff between fleet attempts, doubling with jitter (0 = 50ms)")
		brkN      = flag.Int("breaker-threshold", 0, "consecutive fleet failures that open the circuit breaker (0 = default 3, negative = off)")
		brkCool   = flag.Duration("breaker-cooldown", 0, "how long an open breaker skips the fleet before probing (0 = 30s)")
		reqTO     = flag.Duration("request-timeout", 0, "server-side identify deadline (0 = 30s, negative = off)")
		maxQ      = flag.Int("max-queue", 0, "admission queue depth before shedding 429 (0 = 64, negative = off)")
		queueTO   = flag.Duration("queue-timeout", 0, "longest an admitted request may wait for a slot (0 = 1s)")
		memLim    = flag.Uint64("mem-limit", 0, "heap watermark in bytes: >=90% rejects mine jobs, >=100% shrinks caches (0 = off)")
		compactN  = flag.Int("compact-threshold", 0, "overlay ops that trigger background delta compaction (0 = off)")
		compactIv = flag.Duration("compact-interval", 0, "periodic delta compaction interval (0 = off)")
		dataDir   = flag.String("data-dir", "", "durable data directory: checkpoints snapshots + a delta WAL and recovers from them at startup")
		walSync   = flag.String("wal-sync", "always", "WAL fsync policy for -data-dir: always | interval | none")
		walSyncIv = flag.Duration("wal-sync-interval", 100*time.Millisecond, "flush period for -wal-sync interval")
	)
	flag.Parse()
	bootStart := time.Now()

	cfg := serve.Config{
		Workers:          *workers,
		MineShare:        *mineCPU,
		PoolSize:         *pool,
		CacheCap:         *cache,
		BatchWindow:      *window,
		DefaultEta:       *eta,
		MineStepTimeout:  *stepTO,
		RequestTimeout:   *reqTO,
		MaxQueue:         *maxQ,
		QueueTimeout:     *queueTO,
		MemLimitBytes:    *memLim,
		CompactThreshold: *compactN,
	}
	if *fleet != "" {
		cfg.MineWorkers = strings.Split(*fleet, ",")
		cfg.MineRetries = *retries
		cfg.MineRetryBackoff = *backoff
		cfg.FleetBreakerThreshold = *brkN
		cfg.FleetBreakerCooldown = *brkCool
		log.Printf("mine jobs run on a %d-worker fleet (retry + recorded in-process fallback; circuit breaker on repeated failure)", len(cfg.MineWorkers))
	}
	srv := serve.New(cfg)

	// Recovery-first boot: with -data-dir, state on disk wins over the
	// graph/rule flags — a restart resumes the exact pre-crash generation
	// without any re-ingest. The flags only matter for the very first start
	// against an empty directory.
	recovered := false
	if *dataDir != "" {
		if err := srv.EnablePersistence(serve.PersistOptions{
			Dir:          *dataDir,
			Sync:         serve.SyncPolicy(*walSync),
			SyncInterval: *walSyncIv,
		}); err != nil {
			fatal(err)
		}
		rep, err := srv.Recover()
		if err != nil {
			fatal(err)
		}
		if rep.Recovered {
			recovered = true
			snap := srv.Snapshot()
			log.Printf("recovered generation %d from %s: snapshot %s + %d WAL records (%d truncated, %d quarantined)",
				rep.Generation, *dataDir, rep.Snapshot, rep.Replayed, rep.Truncated, len(rep.Quarantined))
			log.Printf("graph: %d nodes, %d edges; %d rules", snap.G.NumNodes(), snap.G.NumEdges(), len(snap.Rules))
		} else {
			log.Printf("data dir %s holds no snapshot; loading initial state from flags", *dataDir)
		}
	}

	if !recovered {
		g, syms, err := loadGraph(*graphIn, *genKind, *users, *nv, *ne, *seed)
		if err != nil {
			fatal(err)
		}
		log.Printf("graph: %d nodes, %d edges", g.NumNodes(), g.NumEdges())

		var rules []*core.Rule
		var pred core.Predicate
		switch {
		case *rulesIn != "" && (*doMine || *predStr != ""):
			fatal(errors.New("-rules is exclusive with -mine/-pred (the rule file fixes the predicate)"))
		case *rulesIn != "":
			f, err := os.Open(*rulesIn)
			if err != nil {
				fatal(err)
			}
			rules, err = core.ReadRules(f, syms)
			f.Close()
			if err != nil {
				fatal(err)
			}
			if len(rules) == 0 {
				fatal(errors.New("rules file is empty"))
			}
			pred = rules[0].Pred
			log.Printf("loaded %d rules from %s", len(rules), *rulesIn)
		case *predStr != "":
			pred, err = parsePred(syms, *predStr)
			if err != nil {
				fatal(err)
			}
			if *doMine {
				opts := mine.Options{
					K: *k, Sigma: *sigma, D: *d, Lambda: *lambda, N: *workers,
					MaxEdges: *maxEd, MaxCandidatesPerRound: *capRd,
				}.WithOptimizations()
				start := time.Now()
				res := mine.DMine(g, pred, opts)
				for _, mm := range res.TopK {
					rules = append(rules, mm.Rule)
				}
				log.Printf("mined %d rules (F=%.4f) in %s", len(rules), res.F,
					time.Since(start).Round(time.Millisecond))
			} else {
				log.Printf("starting with an empty rule set; POST /v1/mine or PUT /v1/rules to load")
			}
		default:
			fatal(errors.New("one of -rules or -pred is required"))
		}
		if err := srv.LoadSnapshot(g, pred, rules); err != nil {
			fatal(err)
		}
	}
	log.Printf("snapshot generation %d: serving on %s (startup %s)",
		srv.Generation(), *addr, time.Since(bootStart).Round(time.Millisecond))

	// The listener defends itself too: a client that trickles its headers,
	// never reads its response, or parks an idle keep-alive cannot pin a
	// connection forever. WriteTimeout outlasts the identify deadline so the
	// server, not the socket, decides how a slow evaluation ends.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	// Periodic compaction: fold any delta overlay back into a real freeze on
	// a timer, independent of the op-count threshold. A tick with no overlay
	// is a no-op.
	var compactDone chan struct{}
	if *compactIv > 0 {
		compactDone = make(chan struct{})
		go func() {
			tick := time.NewTicker(*compactIv)
			defer tick.Stop()
			for {
				select {
				case <-compactDone:
					return
				case <-tick.C:
					if gen, did, err := srv.Compact(); err != nil {
						log.Printf("compact: %v", err)
					} else if did {
						log.Printf("compacted delta overlay; generation %d", gen)
					}
				}
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		log.Printf("received %v; draining", sig)
	}
	if compactDone != nil {
		close(compactDone)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("job drain: %v", err)
	}
	log.Printf("bye")
}

func loadGraph(file, kind string, users, nv, ne int, seed int64) (*graph.Graph, *graph.Symbols, error) {
	syms := graph.NewSymbols()
	switch {
	case file != "" && kind != "":
		return nil, nil, errors.New("-graph and -gen are exclusive")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		g, err := graph.Read(f, syms)
		return g, syms, err
	case kind == "pokec":
		return gen.Pokec(syms, gen.DefaultPokec(users, seed)), syms, nil
	case kind == "gplus":
		return gen.Gplus(syms, gen.DefaultGplus(users, seed)), syms, nil
	case kind == "synthetic":
		return gen.Synthetic(syms, nv, ne, seed), syms, nil
	case kind != "":
		return nil, nil, fmt.Errorf("unknown -gen %q", kind)
	default:
		return nil, nil, errors.New("one of -graph or -gen is required")
	}
}

func parsePred(syms *graph.Symbols, s string) (core.Predicate, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return core.Predicate{}, fmt.Errorf("predicate must be xLabel,edgeLabel,yLabel; got %q", s)
	}
	return core.Predicate{
		XLabel:    syms.Intern(strings.TrimSpace(parts[0])),
		EdgeLabel: syms.Intern(strings.TrimSpace(parts[1])),
		YLabel:    syms.Intern(strings.TrimSpace(parts[2])),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpard:", err)
	os.Exit(1)
}
