// Command benchjson turns `go test -bench -benchmem` output into the
// BENCH_*.json artifacts tracked by `make bench`: per-benchmark ns/op,
// B/op and allocs/op, joined against a recorded baseline so the speedup
// and allocation-reduction ratios of a hot-path rewrite are visible in one
// file. -set picks the baseline: "match" (pre-CSR matcher, d6c8e5f) or
// "mine" (pre-interning DMine loop, 0549b0b).
//
// Usage: go test -bench ... -benchmem ./... | benchjson [-set match|mine] [-o BENCH_match.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"gpar/internal/benchfmt"
)

// baselines hold the numbers measured at the named commits on the same
// workloads, recorded before each rewrite landed. They were taken on the
// machine that produced the committed artifacts; the ratios are only
// meaningful when the current run uses comparable hardware.
//
// "match": commit d6c8e5f — pointer-chasing [][]Edge adjacency, map
// used-set, per-candidate matcher allocation, before the CSR rewrite.
//
// "mine": commit 0549b0b — string rule/extension identity, per-embedding
// map scratch, single-threaded assembly and sorted-slice diversification
// diffs, before the allocation-lean DMine rewrite.
var baselines = map[string]map[string]measurement{
	"match": {
		"BenchmarkAnchoredMatch/unguided": {NsPerOp: 7171, BytesPerOp: 1379, AllocsPerOp: 64},
		"BenchmarkAnchoredMatch/guided":   {NsPerOp: 44948, BytesPerOp: 6707, AllocsPerOp: 209},
		"BenchmarkMatchSet":               {NsPerOp: 20951397, BytesPerOp: 4145511, AllocsPerOp: 192160},
		"BenchmarkIdentify":               {NsPerOp: 19078529, BytesPerOp: 6297920, AllocsPerOp: 103736},
		// The overlay identify benchmark is gated against the frozen path's
		// baseline (same workload shape, measured at d6c8e5f): serving
		// through a delta overlay must stay within the budget the frozen
		// path set, or the "no overlay" fast path has leaked cost.
		"BenchmarkIdentifyWithOverlay": {NsPerOp: 19078529, BytesPerOp: 6297920, AllocsPerOp: 103736},
	},
	"mine": {
		"BenchmarkDMine":              {NsPerOp: 112067462, BytesPerOp: 31951282, AllocsPerOp: 790954},
		"BenchmarkDMineNo":            {NsPerOp: 119691820, BytesPerOp: 29647447, AllocsPerOp: 710175},
		"BenchmarkDiscoverExtensions": {NsPerOp: 1285430, BytesPerOp: 304374, AllocsPerOp: 11801},
		"BenchmarkDiversifyUpdate":    {NsPerOp: 77365179, BytesPerOp: 260412, AllocsPerOp: 91},
	},
}

// baselineCommits names the commit each baseline set was measured at.
var baselineCommits = map[string]string{
	"match": "d6c8e5f",
	"mine":  "0549b0b",
}

// measurement, entry and report live in internal/benchfmt, shared with
// cmd/benchguard.
type (
	measurement = benchfmt.Measurement
	entry       = benchfmt.Entry
	report      = benchfmt.Report
)

// The optional MB/s column appears when a benchmark calls b.SetBytes
// (the durability benchmarks do); it must be skipped, not mistaken for
// the B/op column.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ MB/s)?(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	set := flag.String("set", "match", "baseline set: match or mine")
	flag.Parse()
	baseline, ok := baselines[*set]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: unknown baseline set %q\n", *set)
		os.Exit(2)
	}

	var entries []entry
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // keep the raw output visible in logs
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		var cur measurement
		cur.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			b, _ := strconv.ParseFloat(m[3], 64)
			cur.BytesPerOp = int64(b)
		}
		if m[4] != "" {
			cur.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		e := entry{Name: m[1], Current: cur}
		if base, ok := baseline[m[1]]; ok {
			b := base
			e.Base = &b
			if cur.NsPerOp > 0 {
				e.Speedup = round2(base.NsPerOp / cur.NsPerOp)
			}
			allocs := cur.AllocsPerOp
			if allocs == 0 {
				e.ZeroAllocs = true
				allocs = 1 // lower-bound ratio; the true reduction is infinite
			}
			if base.AllocsPerOp > 0 {
				e.AllocReduction = round2(float64(base.AllocsPerOp) / float64(allocs))
			}
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}

	rep := report{
		GeneratedBy:    "make bench",
		BaselineCommit: baselineCommits[*set],
		Benchmarks:     entries,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}
