// Command benchjson turns `go test -bench -benchmem` output into the
// BENCH_match.json artifact tracked by `make bench`: per-benchmark ns/op,
// B/op and allocs/op, joined against the recorded pre-CSR baseline so the
// speedup and allocation-reduction ratios of the flat-CSR matcher rewrite
// are visible in one file.
//
// Usage: go test -bench ... -benchmem ./... | benchjson [-o BENCH_match.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baseline holds the numbers measured at commit d6c8e5f (pointer-chasing
// [][]Edge adjacency, map used-set, per-candidate matcher allocation) on
// the same workloads, recorded before the CSR rewrite landed. They were
// taken on the machine that produced the committed artifact; the ratios
// are only meaningful when the current run uses comparable hardware.
var baseline = map[string]measurement{
	"BenchmarkAnchoredMatch/unguided": {NsPerOp: 7171, BytesPerOp: 1379, AllocsPerOp: 64},
	"BenchmarkAnchoredMatch/guided":   {NsPerOp: 44948, BytesPerOp: 6707, AllocsPerOp: 209},
	"BenchmarkMatchSet":               {NsPerOp: 20951397, BytesPerOp: 4145511, AllocsPerOp: 192160},
	"BenchmarkIdentify":               {NsPerOp: 19078529, BytesPerOp: 6297920, AllocsPerOp: 103736},
}

type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type entry struct {
	Name    string       `json:"name"`
	Current measurement  `json:"current"`
	Base    *measurement `json:"baseline,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op (higher is
	// better); AllocReduction likewise for allocs/op, with a zero current
	// count treated as 1 so the ratio is a well-defined lower bound
	// (ZeroAllocs marks that case). Only present when a baseline is
	// recorded for the benchmark.
	Speedup        float64 `json:"speedup,omitempty"`
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
	ZeroAllocs     bool    `json:"zero_allocs,omitempty"`
}

type report struct {
	GeneratedBy    string  `json:"generated_by"`
	BaselineCommit string  `json:"baseline_commit"`
	Benchmarks     []entry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var entries []entry
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // keep the raw output visible in logs
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		var cur measurement
		cur.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			b, _ := strconv.ParseFloat(m[3], 64)
			cur.BytesPerOp = int64(b)
		}
		if m[4] != "" {
			cur.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		e := entry{Name: m[1], Current: cur}
		if base, ok := baseline[m[1]]; ok {
			b := base
			e.Base = &b
			if cur.NsPerOp > 0 {
				e.Speedup = round2(base.NsPerOp / cur.NsPerOp)
			}
			allocs := cur.AllocsPerOp
			if allocs == 0 {
				e.ZeroAllocs = true
				allocs = 1 // lower-bound ratio; the true reduction is infinite
			}
			if base.AllocsPerOp > 0 {
				e.AllocReduction = round2(float64(base.AllocsPerOp) / float64(allocs))
			}
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}

	rep := report{
		GeneratedBy:    "make bench",
		BaselineCommit: "d6c8e5f",
		Benchmarks:     entries,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}
