// Command gparmine runs DMP — diversified top-k GPAR discovery (algorithm
// DMine of the paper) — on a graph file and prints the discovered rules.
//
// Usage:
//
//	gparmine -graph graph.txt -pred "user,like_music,music:Disco" \
//	         -k 10 -sigma 50 -d 2 -lambda 0.5 -n 8 [-rules out.txt] [-no-opt]
//
// Multiple comma-triple predicates may be given separated by ';' (the
// paper's multi-predicate remark): rules are mined per predicate.
//
// With -workers host:port,host:port,... mining runs on a gparworker fleet —
// one worker service per fragment, so the fleet size sets the partition
// width (-n is overridden). Results are byte-identical to in-process runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gpar/internal/core"
	"gpar/internal/graph"
	"gpar/internal/mine"
	"gpar/internal/mine/remote"
)

func main() {
	var (
		graphIn  = flag.String("graph", "", "input graph file")
		predStr  = flag.String("pred", "", "predicates xLabel,edgeLabel,yLabel[;more]")
		k        = flag.Int("k", 10, "top-k size")
		sigma    = flag.Int("sigma", 10, "support threshold σ")
		d        = flag.Int("d", 2, "radius bound")
		lambda   = flag.Float64("lambda", 0.5, "diversification balance λ")
		n        = flag.Int("n", 4, "workers")
		maxEdges = flag.Int("max-edges", 3, "antecedent edge budget")
		capPerRd = flag.Int("cap", 100, "max candidates per round (0 = unlimited)")
		noOpt    = flag.Bool("no-opt", false, "run the unoptimized DMineno baseline")
		rulesOut = flag.String("rules", "", "write discovered rules to this file")
		fleet    = flag.String("workers", "", "comma-separated gparworker addresses; mine on this fleet")
		stepTO   = flag.Duration("step-timeout", 0, "per-superstep worker deadline for -workers (0 = 2m)")
	)
	flag.Parse()
	if *graphIn == "" || *predStr == "" {
		fmt.Fprintln(os.Stderr, "gparmine: -graph and -pred are required")
		os.Exit(2)
	}
	syms := graph.NewSymbols()
	f, err := os.Open(*graphIn)
	if err != nil {
		fatal(err)
	}
	g, err := graph.Read(f, syms)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	opts := mine.Options{
		K: *k, Sigma: *sigma, D: *d, Lambda: *lambda, N: *n,
		MaxEdges: *maxEdges, MaxCandidatesPerRound: *capPerRd,
	}.WithOptimizations()

	var conns []*remote.Conn
	if *fleet != "" {
		if *noOpt {
			fatal(fmt.Errorf("-workers is exclusive with -no-opt (the baseline is in-process only)"))
		}
		addrs := strings.Split(*fleet, ",")
		if opts.N != len(addrs) {
			fmt.Printf("fleet: overriding -n %d with fleet size %d (one worker per fragment)\n", opts.N, len(addrs))
			opts.N = len(addrs)
		}
		conns, err = remote.DialFleet(addrs, remote.DialOptions{StepTimeout: *stepTO})
		if err != nil {
			fatal(err)
		}
		defer remote.CloseAll(conns)
		fmt.Printf("fleet: %d workers connected\n", len(conns))
	}

	var allRules []*core.Rule
	for _, ps := range strings.Split(*predStr, ";") {
		pred, err := parsePred(syms, ps)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		var res *mine.Result
		switch {
		case conns != nil:
			ctx := mine.NewContext(g, pred.XLabel, opts)
			res, err = remote.Mine(ctx, pred, opts, conns)
			if err != nil {
				fatal(err)
			}
		case *noOpt:
			res = mine.DMineNo(g, pred, opts)
		default:
			res = mine.DMine(g, pred, opts)
		}
		elapsed := time.Since(start)
		fmt.Printf("\npredicate %s: %d rounds, %d candidates generated, %d kept, F=%.4f, %s\n",
			pred.String(syms), res.Rounds, res.Generated, res.Kept, res.F, elapsed.Round(time.Millisecond))
		for i, mm := range res.TopK {
			fmt.Printf("%2d. conf %.3f  supp %4d  %s\n", i+1, mm.Conf, mm.Stats.SuppR, mm.Rule)
			allRules = append(allRules, mm.Rule)
		}
	}

	if *rulesOut != "" && len(allRules) > 0 {
		f, err := os.Create(*rulesOut)
		if err != nil {
			fatal(err)
		}
		if err := core.WriteRules(f, allRules); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("\nwrote %d rules to %s\n", len(allRules), *rulesOut)
	}
}

func parsePred(syms *graph.Symbols, s string) (core.Predicate, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return core.Predicate{}, fmt.Errorf("predicate must be xLabel,edgeLabel,yLabel; got %q", s)
	}
	return core.Predicate{
		XLabel:    syms.Intern(strings.TrimSpace(parts[0])),
		EdgeLabel: syms.Intern(strings.TrimSpace(parts[1])),
		YLabel:    syms.Intern(strings.TrimSpace(parts[2])),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gparmine:", err)
	os.Exit(1)
}
