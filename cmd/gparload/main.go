// Command gparload is the serving-layer load harness: it boots a
// self-contained gpard-equivalent server (generated Pokec-style graph, rules
// mined at startup), drives open-loop identify traffic at a fixed offered
// rate, and reports latency percentiles per outcome class — admitted (200),
// shed (429), errored.
//
// The headline mode is -overload: the same offered load is driven twice,
// once with the admission queue armed and once with shedding disabled
// (serve.Config.MaxQueue < 0). The comparison is the point of the server's
// overload design — with shedding, the requests the server *accepts* keep a
// bounded p99 and the rest get an honest, instant 429; without it, every
// request queues indefinitely and the p99 collapses to the timeout ceiling.
// DESIGN.md quotes numbers produced by this harness.
//
// Open loop matters: requests are launched on the offered schedule whether
// or not earlier ones finished (up to -inflight, a harness-memory bound), so
// an overloaded server cannot slow the clients down and hide its backlog —
// the coordinated-omission trap a closed loop falls into.
//
// Usage:
//
//	gparload -users 2000 -qps 200 -dur 10s
//	gparload -overload -users 2000 -qps 500 -dur 10s
//	gparload -quick            # CI smoke: small graph, short runs, asserts
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
	"gpar/internal/serve"
)

func main() {
	var (
		users    = flag.Int("users", 2000, "Pokec-style graph size")
		seed     = flag.Int64("seed", 1, "graph seed")
		qps      = flag.Int("qps", 200, "offered request rate")
		dur      = flag.Duration("dur", 10*time.Second, "measurement duration per pass")
		inflight = flag.Int("inflight", 4096, "max concurrent requests the harness keeps in flight")
		pool     = flag.Int("pool", 0, "server matching concurrency (0 = server default)")
		maxQ     = flag.Int("max-queue", 0, "admission queue bound (0 = server default)")
		queueTO  = flag.Duration("queue-timeout", 0, "admission wait budget (0 = server default)")
		reqTO    = flag.Duration("request-timeout", 0, "server-side identify deadline (0 = server default)")
		overload = flag.Bool("overload", false, "drive the same load with shedding on, then off, and compare")
		quick    = flag.Bool("quick", false, "CI smoke mode: small fixed scenario with assertions")
	)
	flag.Parse()

	if *quick {
		quickSmoke()
		return
	}

	fx := buildFixture(*users, *seed)
	base := serve.Config{
		PoolSize:       *pool,
		MaxQueue:       *maxQ,
		QueueTimeout:   *queueTO,
		RequestTimeout: *reqTO,
	}
	roundRobin := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"indices":[%d]}`, i%len(fx.rules)))
	}
	if !*overload {
		r := runPass("steady", fx, base, *qps, *dur, *inflight, roundRobin)
		r.print()
		return
	}

	// Both passes defeat the match-set cache (capacity 1, round-robin keys):
	// cached identical traffic cannot overload this server at any realistic
	// rate — the cache and the batcher's single-flight coalescing absorb it —
	// so the comparison drives the uncached worst case, where evaluation
	// capacity is the binding resource.
	shedOn := base
	shedOn.CacheCap = 1
	if shedOn.QueueTimeout == 0 {
		// The admitted-latency bound under test: wait at most this long,
		// then 429. The default 1s would still bound p99, just less visibly.
		shedOn.QueueTimeout = 100 * time.Millisecond
	}
	shedOff := base
	shedOff.CacheCap = 1
	shedOff.MaxQueue = -1 // disable admission entirely: the collapse baseline
	on := runPass("shedding on", fx, shedOn, *qps, *dur, *inflight, roundRobin)
	off := runPass("shedding off", fx, shedOff, *qps, *dur, *inflight, roundRobin)
	on.print()
	off.print()
	fmt.Printf("\nadmitted p99: %v (shedding on) vs %v (shedding off) at %d offered qps\n",
		on.okP(0.99).Round(time.Millisecond), off.okP(0.99).Round(time.Millisecond), *qps)
}

// fixture is the shared load-test corpus: one graph plus the rules mined
// over it, reused across passes so every pass serves identical state.
type fixture struct {
	g     *graph.Graph
	pred  core.Predicate
	rules []*core.Rule
}

func buildFixture(users int, seed int64) fixture {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(users, seed))
	pred := gen.PokecPredicates(syms)[0]
	opts := mine.Options{
		K: 32, Sigma: 5, D: 2, Lambda: 0.5, MaxEdges: 2, MaxCandidatesPerRound: 50,
	}.WithOptimizations()
	start := time.Now()
	res := mine.DMine(g, pred, opts)
	rules := make([]*core.Rule, 0, len(res.TopK))
	for _, mm := range res.TopK {
		rules = append(rules, mm.Rule)
	}
	if len(rules) == 0 {
		fatal(fmt.Errorf("startup mine produced no rules; grow -users"))
	}
	log.Printf("fixture: %d nodes, %d edges, %d rules mined in %s",
		g.NumNodes(), g.NumEdges(), len(rules), time.Since(start).Round(time.Millisecond))
	return fixture{g: g, pred: pred, rules: rules}
}

// passResult is one pass's outcome accounting.
type passResult struct {
	name           string
	offered        int
	issued, capped int
	ok, shed, errs int
	okLat, shedLat []time.Duration
	elapsed        time.Duration
}

func (r *passResult) okP(q float64) time.Duration { return percentile(r.okLat, q) }

func (r *passResult) print() {
	fmt.Printf("\n[%s] offered %d qps for %v: issued %d (capped %d), ok %d, shed %d, errors %d\n",
		r.name, r.offered, r.elapsed.Round(time.Second), r.issued, r.capped, r.ok, r.shed, r.errs)
	fmt.Printf("  admitted latency: p50 %v  p95 %v  p99 %v\n",
		percentile(r.okLat, 0.50).Round(time.Millisecond),
		percentile(r.okLat, 0.95).Round(time.Millisecond),
		percentile(r.okLat, 0.99).Round(time.Millisecond))
	if r.shed > 0 {
		fmt.Printf("  shed latency:     p50 %v  p99 %v (the cost of a 429)\n",
			percentile(r.shedLat, 0.50).Round(time.Millisecond),
			percentile(r.shedLat, 0.99).Round(time.Millisecond))
	}
}

// runPass boots a fresh server over the fixture, drives open-loop identify
// traffic at the offered rate for the duration, and tears the server down.
func runPass(name string, fx fixture, cfg serve.Config, qps int, dur time.Duration, maxInflight int, body func(i int) []byte) *passResult {
	srv := serve.New(cfg)
	if err := srv.LoadSnapshot(fx.g, fx.pred, fx.rules); err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go hs.Serve(l)
	url := "http://" + l.Addr().String() + "/v1/identify"
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConns: maxInflight, MaxIdleConnsPerHost: maxInflight},
		Timeout:   2 * time.Minute,
	}

	r := &passResult{name: name, offered: qps}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInflight)
	interval := time.Second / time.Duration(qps)
	start := time.Now()
	tick := time.NewTicker(interval)
	for i := 0; time.Since(start) < dur; i++ {
		<-tick.C
		select {
		case sem <- struct{}{}:
		default:
			// The harness's own memory bound, not the server's: everything
			// beyond maxInflight outstanding requests is recorded as capped
			// rather than silently not offered.
			r.capped++
			continue
		}
		r.issued++
		reqBody := body(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			resp, err := client.Post(url, "application/json", bytes.NewReader(reqBody))
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				r.errs++
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				r.ok++
				r.okLat = append(r.okLat, lat)
			case http.StatusTooManyRequests:
				r.shed++
				r.shedLat = append(r.shedLat, lat)
			default:
				r.errs++
			}
		}()
	}
	tick.Stop()
	wg.Wait()
	r.elapsed = time.Since(start)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	srv.Shutdown(ctx)
	return r
}

// quickSmoke is the CI gate: a small fixed scenario that must finish in a
// few seconds and proves the overload machinery end to end — the server
// serves under load, sheds with 429 + Retry-After when saturated, and the
// admitted requests keep a sane tail.
func quickSmoke() {
	fx := buildFixture(400, 1)

	// Pass 1: generous capacity — everything offered must be admitted.
	oneRule := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"indices":[%d]}`, i%len(fx.rules)))
	}
	calm := runPass("quick/calm", fx, serve.Config{PoolSize: 8, MaxQueue: 64}, 50, 2*time.Second, 256, oneRule)
	calm.print()
	if calm.ok == 0 || calm.errs > 0 {
		fatal(fmt.Errorf("calm pass: ok=%d errs=%d, want traffic served cleanly", calm.ok, calm.errs))
	}

	// Pass 2: one evaluation slot, a one-deep queue, a one-entry cache, and
	// every request asking for the whole rule set Σ — each admitted request
	// holds its slot for a full multi-rule evaluation, so the offered rate
	// is far past capacity and shedding must kick in, fast.
	burst := runPass("quick/burst", fx, serve.Config{
		PoolSize: 1, MaxQueue: 1, QueueTimeout: 50 * time.Millisecond, CacheCap: 1,
	}, 800, 2*time.Second, 256, func(int) []byte { return []byte(`{}`) })
	burst.print()
	if burst.ok == 0 {
		fatal(fmt.Errorf("burst pass admitted nothing"))
	}
	if burst.shed == 0 {
		fatal(fmt.Errorf("burst pass shed nothing: ok=%d errs=%d capped=%d", burst.ok, burst.errs, burst.capped))
	}
	if p99 := percentile(burst.shedLat, 0.99); p99 > 2*time.Second {
		fatal(fmt.Errorf("shed p99 %v: a 429 must be cheap", p99))
	}
	fmt.Println("\nquick smoke ok")
}

func percentile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(q*float64(len(s)-1))]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gparload:", err)
	os.Exit(1)
}
