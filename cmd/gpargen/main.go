// Command gpargen emits data graphs and GPAR rule sets to files, in the
// text formats the other tools consume.
//
// Usage:
//
//	gpargen -kind pokec  -users 2000 -seed 1 -out graph.txt
//	gpargen -kind gplus  -users 2000 -seed 1 -out graph.txt
//	gpargen -kind synthetic -v 10000 -e 20000 -seed 1 -out graph.txt
//	gpargen -kind g1 -out g1.txt                (the paper's Fig. 2 G1)
//	gpargen -kind g2 -out g2.txt                (the paper's Fig. 2 G2)
//	gpargen -kind rules -graph graph.txt -pred "user,like_music,music:Disco" \
//	        -count 24 -vp 4 -ep 5 -out rules.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
)

func main() {
	var (
		kind    = flag.String("kind", "pokec", "pokec | gplus | synthetic | g1 | g2 | rules")
		users   = flag.Int("users", 1000, "user count for pokec/gplus")
		nv      = flag.Int("v", 10000, "nodes for synthetic")
		ne      = flag.Int("e", 20000, "edges for synthetic")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (default stdout)")
		graphIn = flag.String("graph", "", "input graph for -kind rules")
		predStr = flag.String("pred", "", "predicate xLabel,edgeLabel,yLabel for -kind rules")
		count   = flag.Int("count", 24, "rule count for -kind rules")
		vp      = flag.Int("vp", 4, "antecedent nodes for -kind rules")
		ep      = flag.Int("ep", 5, "antecedent edges for -kind rules")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	syms := graph.NewSymbols()
	switch *kind {
	case "pokec":
		g := gen.Pokec(syms, gen.DefaultPokec(*users, *seed))
		writeGraph(w, g)
	case "gplus":
		g := gen.Gplus(syms, gen.DefaultGplus(*users, *seed))
		writeGraph(w, g)
	case "synthetic":
		g := gen.Synthetic(syms, *nv, *ne, *seed)
		writeGraph(w, g)
	case "g1":
		writeGraph(w, gen.G1(syms).G)
	case "g2":
		writeGraph(w, gen.G2(syms).G)
	case "rules":
		if *graphIn == "" || *predStr == "" {
			fatal(fmt.Errorf("-kind rules requires -graph and -pred"))
		}
		f, err := os.Open(*graphIn)
		if err != nil {
			fatal(err)
		}
		g, err := graph.Read(f, syms)
		f.Close()
		if err != nil {
			fatal(err)
		}
		pred, err := parsePred(syms, *predStr)
		if err != nil {
			fatal(err)
		}
		rules := gen.Rules(g, pred, gen.RuleGenParams{Count: *count, VP: *vp, EP: *ep, Seed: *seed})
		if len(rules) == 0 {
			fatal(fmt.Errorf("no rules could be generated; does the predicate have support?"))
		}
		if err := core.WriteRules(w, rules); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}
}

func writeGraph(w *os.File, g *graph.Graph) {
	if _, err := g.WriteTo(w); err != nil {
		fatal(err)
	}
}

func parsePred(syms *graph.Symbols, s string) (core.Predicate, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return core.Predicate{}, fmt.Errorf("predicate must be xLabel,edgeLabel,yLabel")
	}
	return core.Predicate{
		XLabel:    syms.Intern(strings.TrimSpace(parts[0])),
		EdgeLabel: syms.Intern(strings.TrimSpace(parts[1])),
		YLabel:    syms.Intern(strings.TrimSpace(parts[2])),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpargen:", err)
	os.Exit(1)
}
