package gpar_test

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// DMine optimization (incremental diversification, Lemma 3 reduction,
// Lemma 4 bisimulation prefilter, guided matching) toggled individually,
// and the guided-search sketch depth for EIP.

import (
	"fmt"
	"testing"

	"gpar/internal/bench"
	"gpar/internal/eip"
	"gpar/internal/gen"
	"gpar/internal/mine"
)

func BenchmarkAblation_DMineOptimizations(b *testing.B) {
	sc := benchScale()
	g, syms := bench.PokecGraph(sc.PokecUsers, sc.Seed)
	pred := gen.PokecPredicates(syms)[0]
	base := mine.Options{
		K: 10, Sigma: sc.SigmaPokec[2], D: 2, Lambda: 0.5, N: 8,
		MaxEdges: 3, MaxCandidatesPerRound: 60,
	}
	variants := []struct {
		name string
		mod  func(o mine.Options) mine.Options
	}{
		{"all-on", func(o mine.Options) mine.Options { return o.WithOptimizations() }},
		{"all-off", func(o mine.Options) mine.Options { return o }},
		{"incremental-only", func(o mine.Options) mine.Options { o.Incremental = true; return o }},
		{"reduction+incremental", func(o mine.Options) mine.Options { o.Incremental = true; o.Reduction = true; return o }},
		{"bisim-only", func(o mine.Options) mine.Options { o.BisimFilter = true; return o }},
	}
	for _, v := range variants {
		opts := v.mod(base)
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mine.DMine(g, pred, opts)
				b.ReportMetric(float64(res.IsoChecks), "isoChecks")
				b.ReportMetric(float64(res.Pruned), "pruned")
			}
		})
	}
}

func BenchmarkAblation_EIPSketchDepth(b *testing.B) {
	sc := benchScale()
	g, syms := bench.PokecGraph(sc.PokecUsers, sc.Seed)
	rules := gen.Rules(g, gen.PokecPredicates(syms)[0],
		gen.RuleGenParams{Count: 24, VP: 4, EP: 5, Seed: sc.Seed})
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("sketchK=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := eip.Match(g, rules, eip.Options{N: 8, Eta: 1.5, SketchK: k})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.MaxWorkerOp), "maxWorkerOps")
			}
		})
	}
}

// BenchmarkAblation_EmbedCap measures the cost/recall knob of extension
// discovery: the per-center embedding cap of algorithm DMine's localMine.
func BenchmarkAblation_EmbedCap(b *testing.B) {
	sc := benchScale()
	g, syms := bench.PokecGraph(sc.PokecUsers, sc.Seed)
	pred := gen.PokecPredicates(syms)[0]
	for _, cap := range []int{8, 32, 64, 256} {
		opts := mine.Options{
			K: 10, Sigma: sc.SigmaPokec[2], D: 2, Lambda: 0.5, N: 8,
			MaxEdges: 3, MaxCandidatesPerRound: 60, EmbedCap: cap,
		}.WithOptimizations()
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mine.DMine(g, pred, opts)
				b.ReportMetric(float64(res.Kept), "rulesKept")
			}
		})
	}
}
