// Simulation: the matching-semantics extension the paper's conclusion
// proposes as future work ("allowing other matching semantics such as graph
// simulation"). Compares subgraph-isomorphism matching with (dual) graph
// simulation on the paper's G1 graph: simulation is polynomial-time and
// coarser — every isomorphism match survives, but nodes that only satisfy
// the pattern "up to copy counting" appear as well.
//
// Run with: go run ./examples/simulation
package main

import (
	"fmt"

	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

func main() {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	fmt.Printf("G1: %d nodes, %d edges\n\n", f.G.NumNodes(), f.G.NumEdges())

	// Pattern: x likes two distinct French restaurants that are in the same
	// city. Isomorphism requires two copies; simulation cannot count.
	p := pattern.New(syms)
	x := p.AddNode(gen.LCust)
	fr := p.AddNode(gen.LFrench)
	p.SetMult(fr, 2)
	city := p.AddNode(gen.LCity)
	p.AddEdge(x, fr, gen.ELike)
	p.AddEdge(fr, city, gen.EIn)
	p.X = x

	iso := match.MatchSet(p, f.G, nil, match.Options{})
	sim := match.SimulationSet(p, f.G)
	fmt.Println("pattern:", p)
	fmt.Printf("isomorphism matches of x: %v\n", iso)
	fmt.Printf("simulation matches of x:  %v\n", sim)

	// A pattern no isomorphism can satisfy (demanding 4 liked restaurants)
	// still has simulation matches: simulation folds the copies together.
	q := pattern.New(syms)
	qx := q.AddNode(gen.LCust)
	qfr := q.AddNode(gen.LFrench)
	q.SetMult(qfr, 4)
	q.AddEdge(qx, qfr, gen.ELike)
	q.X = qx
	fmt.Println("\npattern:", q)
	fmt.Printf("isomorphism matches of x: %v\n", match.MatchSet(q, f.G, nil, match.Options{}))
	fmt.Printf("simulation matches of x:  %v\n", match.SimulationSet(q, f.G))
	fmt.Println("\n(simulation is the polynomial-time over-approximation the paper's")
	fmt.Println(" future-work section proposes; see internal/match/simulation.go)")
}
