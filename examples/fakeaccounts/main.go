// Fakeaccounts: scam detection with GPARs (Fig. 1(d) of the paper). Builds
// the accounts/blogs graph G2 of Fig. 2, applies rule R4 — "if x' is a
// confirmed fake account, x and x' like the same blogs, and both post blogs
// containing the same keyword, then x is likely fake" — and reports the
// suspects found by the EIP algorithm.
//
// Run with: go run ./examples/fakeaccounts
package main

import (
	"fmt"

	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
)

func main() {
	syms := graph.NewSymbols()
	f := gen.G2(syms)
	fmt.Printf("G2: %d nodes, %d edges (accounts, blogs, keywords)\n\n", f.G.NumNodes(), f.G.NumEdges())

	r4 := gen.R4(syms)
	fmt.Println("rule R4:", r4)

	res := core.Eval(f.G, r4, match.Options{}, false)
	fmt.Printf("\nsupp(R4,G2) = %d (paper's Example 5: 3, matches acct1-acct3)\n", res.Stats.SuppR)
	if trivial, why := res.Stats.Trivial(); trivial {
		fmt.Printf("conf(R4,G2) is a trivial case: %s\n", why)
		fmt.Println("(every account matching the antecedent already is fake — R4 holds as a logic rule on G2)")
	}

	out, err := eip.Match(f.G, []*core.Rule{r4}, eip.Options{N: 2, Eta: 1.0})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nfake-account suspects (Σ(x,G2,η)):")
	for _, v := range out.Identified {
		fmt.Printf("  node %d (%s)\n", v, f.G.LabelName(v))
	}
}
