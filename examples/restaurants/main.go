// Restaurants: the paper's running example end to end. Builds the G1 graph
// of Fig. 2, evaluates the Fig. 1(a)/Fig. 3 rules (R1, R5-R8), reproducing
// the numbers of Examples 3, 5, 8 and 9, and then mines diversified top-k
// GPARs from scratch with algorithm DMine.
//
// Run with: go run ./examples/restaurants
package main

import (
	"fmt"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/mine"
)

func main() {
	syms := graph.NewSymbols()
	f := gen.G1(syms)
	fmt.Printf("G1: %d nodes, %d edges (Fig. 2 of the paper)\n\n", f.G.NumNodes(), f.G.NumEdges())

	rules := []struct {
		name string
		r    *core.Rule
	}{
		{"R1 (Fig 1a)", gen.R1(syms)},
		{"R5 (Fig 3)", gen.R5(syms)},
		{"R6 (Fig 3)", gen.R6(syms)},
		{"R7 (Fig 3)", gen.R7(syms)},
		{"R8 (Fig 3)", gen.R8(syms)},
	}
	fmt.Println("rule            supp(R)  supp(Qq̄)  conf   matches (cust IDs)")
	for _, rc := range rules {
		res := core.Eval(f.G, rc.r, match.Options{}, false)
		fmt.Printf("%-14s %7d %9d %6.2f   %v\n",
			rc.name, res.Stats.SuppR, res.Stats.SuppQqb, res.Stats.Conf(), res.RSet)
	}

	fmt.Println("\nmining diversified top-2 GPARs (k=2, d=2, λ=0.5, σ=1):")
	opts := mine.Options{
		K: 2, Sigma: 1, D: 2, Lambda: 0.5, N: 2, MaxEdges: 3,
	}.WithOptimizations()
	res := mine.DMine(f.G, gen.VisitPredicate(syms), opts)
	fmt.Printf("explored %d candidates over %d rounds; F(Lk) = %.3f\n",
		res.Generated, res.Rounds, res.F)
	for i, mm := range res.TopK {
		fmt.Printf("%d. conf %.2f supp %d  %s\n", i+1, mm.Conf, mm.Stats.SuppR, mm.Rule)
	}
}
