// Gpardclient demonstrates the gpard serving subsystem end to end, in one
// process: it generates a Pokec-like social graph, mines a diversified
// top-k rule set with DMine, starts the serve.Server on a local listener,
// and then drives the HTTP API the way a marketing backend would — many
// concurrent identify calls for the same rules (served from the match-set
// cache after the first execution), an async re-mine job that hot-swaps
// the rule set, and the /stats counters that make the cache and batcher
// behaviour observable.
//
// Run with: go run ./examples/gpardclient
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"time"

	"gpar/internal/core"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
	"gpar/internal/serve"
)

func main() {
	// 1. Mine once.
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(1500, 7))
	pred := core.Predicate{
		XLabel:    syms.Intern("user"),
		EdgeLabel: syms.Intern("like_music"),
		YLabel:    syms.Intern("music:Disco"),
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	res := mine.DMine(g, pred, mine.Options{
		K: 6, Sigma: 10, D: 2, Lambda: 0.5, N: 4, MaxEdges: 2,
		MaxCandidatesPerRound: 60,
	}.WithOptimizations())
	var rules []*core.Rule
	for _, mm := range res.TopK {
		rules = append(rules, mm.Rule)
	}
	fmt.Printf("mined %d rules (F=%.4f)\n", len(rules), res.F)

	// 2. Serve many.
	srv := serve.New(serve.Config{Workers: 4, DefaultEta: 1.0})
	if err := srv.LoadSnapshot(g, pred, rules); err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving generation %d at %s\n\n", srv.Generation(), ts.URL)

	// Browse the resident rule set.
	var ruleList struct {
		Rules []struct {
			Key  string `json:"key"`
			Rule string `json:"rule"`
		} `json:"rules"`
	}
	getJSON(ts.URL+"/v1/rules", &ruleList)
	for i, r := range ruleList.Rules {
		fmt.Printf("rule %d [%s]: %s\n", i, r.Key[:8], r.Rule)
	}

	// 3. A stampede of identical queries: the first executes, the rest are
	// answered by the batcher and then the match-set cache.
	body := []byte(`{"eta": 1.2}`)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
			if err != nil {
				panic(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	fmt.Printf("\n32 concurrent identify calls in %s\n", time.Since(start).Round(time.Millisecond))

	var identified struct {
		Count int `json:"count"`
		Rules []struct {
			Conf    any  `json:"conf"`
			Applied bool `json:"applied"`
			Matches int  `json:"matches"`
			Cached  bool `json:"cached"`
		} `json:"rules"`
	}
	postJSON(ts.URL+"/v1/identify", body, &identified)
	fmt.Printf("identified %d potential customers; first rule: conf=%v matches=%d cached=%v\n",
		identified.Count, identified.Rules[0].Conf, identified.Rules[0].Matches, identified.Rules[0].Cached)

	stats := getStats(ts.URL)
	fmt.Printf("cache: %v, batch: %v\n", stats["cache"], stats["batch"])

	// 4. Re-mine asynchronously for a different predicate and hot-swap.
	var job struct {
		ID string `json:"id"`
	}
	postJSON(ts.URL+"/v1/mine", []byte(`{
		"xLabel":"user","edgeLabel":"like_book","yLabel":"book:personal development",
		"k":4,"sigma":10,"maxEdges":2,"cap":60,"install":true}`), &job)
	fmt.Printf("\nmine job %s started\n", job.ID)
	for {
		var st struct {
			Status     string `json:"status"`
			Kept       int    `json:"kept"`
			Generation uint64 `json:"generation"`
			Error      string `json:"error"`
		}
		getJSON(ts.URL+"/v1/jobs/"+job.ID, &st)
		if st.Status == "done" || st.Status == "failed" {
			fmt.Printf("job %s: %s (kept %d, generation now %d) %s\n",
				job.ID, st.Status, st.Kept, st.Generation, st.Error)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The swap invalidated the cache: the next identify misses and
	// re-executes against the new rule set.
	postJSON(ts.URL+"/v1/identify", body, &identified)
	fmt.Printf("after swap: identified %d for the new predicate (cached=%v)\n",
		identified.Count, identified.Rules[0].Cached)
	stats = getStats(ts.URL)
	fmt.Printf("cache after swap: %v\n", stats["cache"])

	// 5. Durability: with a data directory, ingest survives a crash. The
	// server checkpoints its snapshot on every swap and appends each delta
	// batch to a write-ahead log before acknowledging it, so a restart
	// recovers the exact pre-crash generation — no re-ingest, identical
	// answers. (The daemon exposes the same thing as gpard -data-dir.)
	dataDir, err := os.MkdirTemp("", "gpard-data-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dataDir)
	dur := serve.New(serve.Config{Workers: 4, DefaultEta: 1.0})
	if err := dur.EnablePersistence(serve.PersistOptions{Dir: dataDir}); err != nil {
		panic(err)
	}
	if err := dur.LoadSnapshot(g, pred, rules); err != nil {
		panic(err)
	}
	ds := httptest.NewServer(dur.Handler())
	fmt.Printf("\ndurable server at generation %d, data dir %s\n", dur.Generation(), dataDir)
	for i := 0; i < 3; i++ {
		var dr struct {
			Generation uint64 `json:"generation"`
		}
		postJSON(ds.URL+"/v1/graph/delta",
			[]byte(`{"ops":[{"op":"addNode","label":"user"}]}`), &dr)
		fmt.Printf("delta batch accepted: generation %d (logged before acknowledged)\n", dr.Generation)
	}
	type answer struct {
		Generation uint64  `json:"generation"`
		Count      int     `json:"count"`
		Identified []int32 `json:"identified"`
	}
	var before answer
	postJSON(ds.URL+"/v1/identify", body, &before)
	ds.Close() // the process "dies" here: no shutdown, no goodbye

	restart := time.Now()
	dur2 := serve.New(serve.Config{Workers: 4, DefaultEta: 1.0})
	if err := dur2.EnablePersistence(serve.PersistOptions{Dir: dataDir}); err != nil {
		panic(err)
	}
	rep, err := dur2.Recover()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nrestarted in %s: snapshot %s + %d WAL records replayed → generation %d\n",
		time.Since(restart).Round(time.Millisecond), rep.Snapshot, rep.Replayed, dur2.Generation())
	ds2 := httptest.NewServer(dur2.Handler())
	defer ds2.Close()
	var after answer
	postJSON(ds2.URL+"/v1/identify", body, &after)
	if after.Generation != before.Generation || after.Count != before.Count ||
		!reflect.DeepEqual(after.Identified, before.Identified) {
		panic(fmt.Sprintf("recovered answers differ: %+v vs %+v", before, after))
	}
	fmt.Printf("pre-crash and post-restart identify answers are identical (%d identified at generation %d) — nothing re-ingested\n",
		after.Count, after.Generation)
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		panic(err)
	}
}

func postJSON(url string, body []byte, v any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		panic(err)
	}
}

func getStats(base string) map[string]any {
	var stats map[string]any
	getJSON(base+"/stats", &stats)
	return stats
}
