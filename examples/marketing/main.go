// Marketing: the full social-media-marketing pipeline the paper motivates.
// Generates a Pokec-like social network, mines diversified GPARs for a
// "likes Disco" event (the shape of the paper's case-study rule R9), then
// applies the mined rules with the EIP algorithm to identify potential
// customers — people whose social neighborhood predicts they will like
// Disco even though the graph does not record it yet.
//
// Run with: go run ./examples/marketing
package main

import (
	"fmt"

	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

func main() {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(800, 7))
	fmt.Printf("Pokec-like graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	pred := core.Predicate{
		XLabel:    syms.Intern("user"),
		EdgeLabel: syms.Intern("like_music"),
		YLabel:    syms.Intern("music:Disco"),
	}
	fmt.Printf("event: %s\n\n", pred.String(syms))

	// Step 1: discover diversified GPARs (algorithm DMine).
	opts := mine.Options{
		K: 6, Sigma: 5, D: 2, Lambda: 0.4, N: 4,
		MaxEdges: 3, MaxCandidatesPerRound: 50,
	}.WithOptimizations()
	res := mine.DMine(g, pred, opts)
	fmt.Printf("DMine: %d rounds, %d candidates, kept %d, F = %.3f\n",
		res.Rounds, res.Generated, res.Kept, res.F)
	var rules []*core.Rule
	for i, mm := range res.TopK {
		fmt.Printf("%d. conf %.2f supp %3d  %s\n", i+1, mm.Conf, mm.Stats.SuppR, mm.Rule)
		rules = append(rules, mm.Rule)
	}
	if len(rules) == 0 {
		fmt.Println("no rules found — try lowering sigma")
		return
	}

	// Step 2: identify potential customers (algorithm Match).
	out, err := eip.Match(g, rules, eip.Options{N: 4, Eta: 1.2})
	if err != nil {
		panic(err)
	}
	applied := 0
	for _, pr := range out.PerRule {
		if pr.Applied {
			applied++
		}
	}
	fmt.Printf("\nEIP: applied %d/%d rules with η = 1.2\n", applied, len(rules))
	fmt.Printf("identified %d potential Disco customers\n", len(out.Identified))

	// How many of them does the graph already record as liking Disco?
	known := 0
	for _, v := range out.Identified {
		for _, e := range g.Out(v) {
			if syms.Name(e.Label) == "like_music" && g.LabelName(e.To) == "music:Disco" {
				known++
				break
			}
		}
	}
	fmt.Printf("of those, %d already like Disco; %d are new marketing targets\n",
		known, len(out.Identified)-known)
}
