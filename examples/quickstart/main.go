// Quickstart: build a small social graph, define one GPAR by hand, compute
// its support and BF/LCWA confidence, and identify potential customers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/graph"
	"gpar/internal/match"
	"gpar/internal/pattern"
)

func main() {
	// A toy recommendation network: customers, friendships and restaurant
	// visits.
	syms := graph.NewSymbols()
	g := graph.New(syms)
	alice := g.AddNode("cust")
	bob := g.AddNode("cust")
	carol := g.AddNode("cust")
	dave := g.AddNode("cust")
	eve := g.AddNode("cust")
	bistro := g.AddNode("restaurant")
	diner := g.AddNode("restaurant")
	bar := g.AddNode("bar")

	g.AddEdge(alice, bob, "friend")
	g.AddEdge(bob, alice, "friend")
	g.AddEdge(carol, bob, "friend")
	g.AddEdge(dave, carol, "friend")
	g.AddEdge(eve, bob, "friend")

	g.AddEdge(bob, bistro, "visit")
	g.AddEdge(alice, bistro, "visit")
	g.AddEdge(carol, bistro, "visit")
	g.AddEdge(dave, diner, "visit")
	// Eve only ever visits a bar: under the local closed world assumption
	// she is a negative example for restaurant rules, not an unknown.
	g.AddEdge(eve, bar, "visit")

	// GPAR R(x,y): if x and a friend x' both exist and x' visits
	// restaurant y, then x will likely visit y.
	q := pattern.New(syms)
	x := q.AddNode("cust")
	x2 := q.AddNode("cust")
	y := q.AddNode("restaurant")
	q.X, q.Y = x, y
	q.AddEdge(x, x2, "friend")
	q.AddEdge(x2, y, "visit")

	rule := &core.Rule{Q: q, Pred: core.Predicate{
		XLabel:    syms.Intern("cust"),
		EdgeLabel: syms.Intern("visit"),
		YLabel:    syms.Intern("restaurant"),
	}}
	fmt.Println("rule:", rule)

	// Sequential evaluation: the Section 3 statistics.
	res := core.Eval(g, rule, match.Options{}, true)
	fmt.Printf("supp(R,G)=%d supp(Q,G)=%d supp(q,G)=%d supp(q̄,G)=%d supp(Qq̄,G)=%d\n",
		res.Stats.SuppR, res.Stats.SuppQ, res.Stats.SuppQ1,
		res.Stats.SuppQbar, res.Stats.SuppQqb)
	fmt.Printf("BF confidence  conf(R,G) = %.3f\n", res.Stats.Conf())
	fmt.Printf("conventional   supp(R)/supp(Q) = %.3f\n", res.Stats.StdConf())

	// Entity identification: who should we recommend restaurants to?
	out, err := eip.Match(g, []*core.Rule{rule}, eip.Options{N: 2, Eta: 0.1})
	if err != nil {
		panic(err)
	}
	fmt.Print("potential customers: ")
	for i, v := range out.Identified {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("node %d (%s)", v, g.LabelName(v))
	}
	fmt.Println()
}
