package gpar_test

// Benchmarks regenerating every table and figure of Section 6 of the paper
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results). Each figure is one benchmark with one
// sub-benchmark per (sweep point, algorithm); run them all with
//
//	go test -bench=. -benchmem
//
// Workload sizes sit between the harness's QuickScale and DefaultScale so a
// full -bench=. run stays in the minutes range.

import (
	"fmt"
	"testing"

	"gpar/internal/bench"
	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

func benchScale() bench.Scale {
	return bench.Scale{
		PokecUsers: 600,
		GplusUsers: 600,
		SynSizes:   [][2]int{{5000, 10000}, {10000, 20000}, {15000, 30000}, {20000, 40000}, {25000, 50000}},
		Ns:         []int{4, 8, 12, 16, 20},
		SigmaPokec: []int{12, 16, 20, 24, 28},
		SigmaGplus: []int{4, 5, 6, 7, 8},
		RuleCounts: []int{8, 16, 24, 32, 40, 48},
		Ds:         []int{1, 2, 3},
		Seed:       1,
	}
}

func dmOpts(sigma, n, d int) mine.Options {
	return mine.Options{
		K: 10, Sigma: sigma, D: d, Lambda: 0.5, N: n,
		MaxEdges: 3, MaxCandidatesPerRound: 60,
	}.WithOptimizations()
}

// benchDMine runs the DMine-vs-DMineno pair for each sweep point.
func benchDMine(b *testing.B, xs []string, run func(i int, optimized bool) *mine.Result) {
	for i, x := range xs {
		i := i
		b.Run(fmt.Sprintf("%s/DMine", x), func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				res := run(i, true)
				b.ReportMetric(float64(res.MaxWorkerOp), "maxWorkerOps")
			}
		})
		b.Run(fmt.Sprintf("%s/DMineno", x), func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				res := run(i, false)
				b.ReportMetric(float64(res.MaxWorkerOp), "maxWorkerOps")
			}
		})
	}
}

func runDM(g *graph.Graph, pred core.Predicate, opts mine.Options, optimized bool) *mine.Result {
	if optimized {
		return mine.DMine(g, pred, opts)
	}
	return mine.DMineNo(g, pred, opts)
}

// --- Exp-1: DMine scalability, Figures 5(a)-5(f) plus the varying-d text
// result ---

func BenchmarkFig5a_DMineVaryN_Pokec(b *testing.B) {
	sc := benchScale()
	g, syms := bench.PokecGraph(sc.PokecUsers, sc.Seed)
	pred := gen.PokecPredicates(syms)[0]
	sigma := sc.SigmaPokec[len(sc.SigmaPokec)/2]
	benchDMine(b, nLabels(sc.Ns), func(i int, opt bool) *mine.Result {
		return runDM(g, pred, dmOpts(sigma, sc.Ns[i], 2), opt)
	})
}

func BenchmarkFig5b_DMineVaryN_Gplus(b *testing.B) {
	sc := benchScale()
	g, syms := bench.GplusGraph(sc.GplusUsers, sc.Seed)
	pred := gen.GplusPredicates(syms)[0]
	sigma := sc.SigmaGplus[len(sc.SigmaGplus)/2]
	benchDMine(b, nLabels(sc.Ns), func(i int, opt bool) *mine.Result {
		return runDM(g, pred, dmOpts(sigma, sc.Ns[i], 2), opt)
	})
}

func BenchmarkFig5c_DMineVarySigma_Pokec(b *testing.B) {
	sc := benchScale()
	g, syms := bench.PokecGraph(sc.PokecUsers, sc.Seed)
	pred := gen.PokecPredicates(syms)[0]
	benchDMine(b, sigmaLabels(sc.SigmaPokec), func(i int, opt bool) *mine.Result {
		return runDM(g, pred, dmOpts(sc.SigmaPokec[i], 4, 2), opt)
	})
}

func BenchmarkFig5d_DMineVarySigma_Gplus(b *testing.B) {
	sc := benchScale()
	g, syms := bench.GplusGraph(sc.GplusUsers, sc.Seed)
	pred := gen.GplusPredicates(syms)[0]
	benchDMine(b, sigmaLabels(sc.SigmaGplus), func(i int, opt bool) *mine.Result {
		return runDM(g, pred, dmOpts(sc.SigmaGplus[i], 4, 2), opt)
	})
}

func BenchmarkFig5e_DMineVaryN_Synthetic(b *testing.B) {
	sc := benchScale()
	g, _ := bench.SyntheticGraph(sc.SynSizes[0][0], sc.SynSizes[0][1], sc.Seed)
	pred := bench.SyntheticPredicate(g)
	benchDMine(b, nLabels(sc.Ns), func(i int, opt bool) *mine.Result {
		return runDM(g, pred, dmOpts(2, sc.Ns[i], 2), opt)
	})
}

func BenchmarkFig5f_DMineVaryG_Synthetic(b *testing.B) {
	sc := benchScale()
	xs := make([]string, len(sc.SynSizes))
	for i, s := range sc.SynSizes {
		xs[i] = fmt.Sprintf("V=%d", s[0])
	}
	benchDMine(b, xs, func(i int, opt bool) *mine.Result {
		g, _ := bench.SyntheticGraph(sc.SynSizes[i][0], sc.SynSizes[i][1], sc.Seed)
		pred := bench.SyntheticPredicate(g)
		return runDM(g, pred, dmOpts(2, 16, 2), opt)
	})
}

func BenchmarkFig5x_DMineVaryD_Synthetic(b *testing.B) {
	sc := benchScale()
	g, _ := bench.SyntheticGraph(sc.SynSizes[0][0], sc.SynSizes[0][1], sc.Seed)
	pred := bench.SyntheticPredicate(g)
	benchDMine(b, dLabels(sc.Ds), func(i int, opt bool) *mine.Result {
		return runDM(g, pred, dmOpts(2, 8, sc.Ds[i]), opt)
	})
}

// --- Exp-2: the precision table ---

// BenchmarkTable2_Precision times the full cross-validation study; the
// precision values themselves are printed by `gparbench -exp precision` and
// recorded in EXPERIMENTS.md.
func BenchmarkTable2_Precision(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		table := bench.Precision(sc, []int{10, 30, 60})
		// conf (row 2) must beat PCAconf (row 0) and Iconf (row 1) at top-10
		// in a healthy run; surface the value as a metric.
		b.ReportMetric(table.Values[2][0], "conf-top10-precision")
	}
}

// --- Exp-3: Match scalability, Figures 5(h)-5(o) ---

func benchEIP(b *testing.B, xs []string, setup func(i int) (*graph.Graph, []*core.Rule, eip.Options)) {
	algos := []struct {
		name string
		run  func(*graph.Graph, []*core.Rule, eip.Options) (*eip.Result, error)
	}{
		{"Match", eip.Match},
		{"Matchc", eip.Matchc},
		{"disVF2", eip.DisVF2},
	}
	for i, x := range xs {
		g, rules, opts := setup(i)
		for _, a := range algos {
			b.Run(fmt.Sprintf("%s/%s", x, a.name), func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					res, err := a.run(g, rules, opts)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.MaxWorkerOp), "maxWorkerOps")
				}
			})
		}
	}
}

func BenchmarkFig5h_MatchVaryN_Pokec(b *testing.B) {
	sc := benchScale()
	g, syms := bench.PokecGraph(sc.PokecUsers, sc.Seed)
	rules := gen.Rules(g, gen.PokecPredicates(syms)[0], gen.RuleGenParams{Count: 24, VP: 4, EP: 5, Seed: sc.Seed})
	benchEIP(b, nLabels(sc.Ns), func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
		return g, rules, eip.Options{N: sc.Ns[i], Eta: 1.5}
	})
}

func BenchmarkFig5i_MatchVaryN_Gplus(b *testing.B) {
	sc := benchScale()
	g, syms := bench.GplusGraph(sc.GplusUsers, sc.Seed)
	rules := gen.Rules(g, gen.GplusPredicates(syms)[0], gen.RuleGenParams{Count: 24, VP: 4, EP: 5, Seed: sc.Seed})
	benchEIP(b, nLabels(sc.Ns), func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
		return g, rules, eip.Options{N: sc.Ns[i], Eta: 1.5}
	})
}

func BenchmarkFig5j_MatchVarySigmaSet_Pokec(b *testing.B) {
	sc := benchScale()
	g, syms := bench.PokecGraph(sc.PokecUsers, sc.Seed)
	all := gen.Rules(g, gen.PokecPredicates(syms)[0], gen.RuleGenParams{Count: 48, VP: 4, EP: 5, Seed: sc.Seed})
	benchEIP(b, setLabels(sc.RuleCounts), func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
		n := sc.RuleCounts[i]
		if n > len(all) {
			n = len(all)
		}
		return g, all[:n], eip.Options{N: 8, Eta: 1.5}
	})
}

func BenchmarkFig5k_MatchVarySigmaSet_Gplus(b *testing.B) {
	sc := benchScale()
	g, syms := bench.GplusGraph(sc.GplusUsers, sc.Seed)
	all := gen.Rules(g, gen.GplusPredicates(syms)[0], gen.RuleGenParams{Count: 48, VP: 4, EP: 5, Seed: sc.Seed})
	benchEIP(b, setLabels(sc.RuleCounts), func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
		n := sc.RuleCounts[i]
		if n > len(all) {
			n = len(all)
		}
		return g, all[:n], eip.Options{N: 8, Eta: 1.5}
	})
}

func BenchmarkFig5l_MatchVaryD_Pokec(b *testing.B) {
	sc := benchScale()
	g, syms := bench.PokecGraph(sc.PokecUsers, sc.Seed)
	pred := gen.PokecPredicates(syms)[0]
	benchEIP(b, dLabels(sc.Ds), func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
		d := sc.Ds[i]
		rules := gen.Rules(g, pred, gen.RuleGenParams{Count: 10, VP: 2 + d, EP: 3 + d, Seed: sc.Seed + int64(d)})
		return g, rules, eip.Options{N: 8, Eta: 1.5}
	})
}

func BenchmarkFig5m_MatchVaryD_Gplus(b *testing.B) {
	sc := benchScale()
	g, syms := bench.GplusGraph(sc.GplusUsers, sc.Seed)
	pred := gen.GplusPredicates(syms)[0]
	benchEIP(b, dLabels(sc.Ds), func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
		d := sc.Ds[i]
		rules := gen.Rules(g, pred, gen.RuleGenParams{Count: 10, VP: 2 + d, EP: 3 + d, Seed: sc.Seed + int64(d)})
		return g, rules, eip.Options{N: 8, Eta: 1.5}
	})
}

func BenchmarkFig5n_MatchVaryN_Synthetic(b *testing.B) {
	sc := benchScale()
	size := sc.SynSizes[len(sc.SynSizes)-1]
	g, _ := bench.SyntheticGraph(size[0], size[1], sc.Seed)
	pred := bench.SyntheticPredicate(g)
	rules := gen.Rules(g, pred, gen.RuleGenParams{Count: 24, VP: 4, EP: 5, Seed: sc.Seed})
	benchEIP(b, nLabels(sc.Ns), func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
		return g, rules, eip.Options{N: sc.Ns[i], Eta: 1.5}
	})
}

func BenchmarkFig5o_MatchVaryG_Synthetic(b *testing.B) {
	sc := benchScale()
	xs := make([]string, len(sc.SynSizes))
	for i, s := range sc.SynSizes {
		xs[i] = fmt.Sprintf("V=%d", s[0])
	}
	benchEIP(b, xs, func(i int) (*graph.Graph, []*core.Rule, eip.Options) {
		g, _ := bench.SyntheticGraph(sc.SynSizes[i][0], sc.SynSizes[i][1], sc.Seed)
		pred := bench.SyntheticPredicate(g)
		rules := gen.Rules(g, pred, gen.RuleGenParams{Count: 24, VP: 4, EP: 5, Seed: sc.Seed})
		return g, rules, eip.Options{N: 4, Eta: 1.5}
	})
}

// --- label helpers ---

func nLabels(ns []int) []string     { return prefixed("n=", ns) }
func sigmaLabels(ss []int) []string { return prefixed("sigma=", ss) }
func dLabels(ds []int) []string     { return prefixed("d=", ds) }
func setLabels(ss []int) []string   { return prefixed("rules=", ss) }

func prefixed(p string, xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%s%d", p, x)
	}
	return out
}
