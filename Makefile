GO ?= go
BIN := bin

.PHONY: all build vet test race bench bench-match bench-mine bench-short \
	bench-mine-short bench-guard docs-check fuzz-smoke loadtest overload \
	crashtest serve clean

all: vet build test

build:
	$(GO) build -o $(BIN)/ ./cmd/...

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test -shuffle=on ./...

# The remote race suites include the netfault chaos tests; their tight
# timeout is the deadlock watchdog — an injected fault that hangs instead
# of surfacing a typed error fails the build instead of wedging it.
race:
	$(GO) test -race ./internal/serve/ ./internal/partition/ ./internal/match/ \
	    ./internal/graph/ ./internal/mine/ ./internal/netfault/
	$(GO) test -race -timeout 120s ./internal/mine/wire/ ./internal/mine/remote/

# Short coverage-guided runs of the fuzz targets: delta ingest (wire decode
# in serve, op application in graph) and the durability decoders (snapshot
# file format, WAL replay). Go allows one target per -fuzz invocation, so
# each runs separately; seed corpora also run on every plain `make test`.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzApplyDelta' -fuzztime 20s ./internal/graph/
	$(GO) test -run '^$$' -fuzz 'FuzzDeltaHandler' -fuzztime 20s ./internal/serve/
	$(GO) test -run '^$$' -fuzz 'FuzzSnapshotDecode' -fuzztime 20s ./internal/snapfile/
	$(GO) test -run '^$$' -fuzz 'FuzzWALReplay' -fuzztime 20s ./internal/serve/

# Run the hot-path benchmarks with -benchmem and record them, joined
# against their recorded baselines, in BENCH_match.json (matcher, vs
# d6c8e5f) and BENCH_mine.json (mining loop, vs 0549b0b). The two-step
# temp-file dance (rather than a pipe) makes a benchmark failure fail the
# target instead of being masked by the parser's exit status.
bench: bench-match bench-mine

bench-match:
	$(GO) test -run '^$$' -bench 'BenchmarkAnchoredMatch|BenchmarkMatchSet$$|BenchmarkIdentify|BenchmarkDeltaApply|BenchmarkWALAppend|BenchmarkSnapshotLoad' \
	    -benchmem -benchtime=1s ./internal/match/ ./internal/serve/ ./internal/snapfile/ > bench.out
	$(GO) run ./cmd/benchjson -set match -o BENCH_match.json < bench.out
	@rm -f bench.out

bench-mine:
	$(GO) test -run '^$$' -bench 'BenchmarkDMine$$|BenchmarkDMineNo$$|BenchmarkDiscoverExtensions|BenchmarkLocalMineRound|BenchmarkDiversifyUpdate' \
	    -benchmem -benchtime=2s ./internal/mine/ ./internal/diversify/ > bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkMineJob' \
	    -benchmem -benchtime=2s ./internal/serve/ >> bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkDMineDistributed' \
	    -benchmem -benchtime=2s ./internal/mine/remote/ >> bench.out
	$(GO) run ./cmd/benchjson -set mine -o BENCH_mine.json < bench.out
	@rm -f bench.out

# Short-mode variants for CI: one quick pass so regressions show up in PR
# logs without a stable-machine timing claim.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkAnchoredMatch|BenchmarkIdentify' \
	    -benchmem -benchtime=50x ./internal/match/ ./internal/serve/ > bench.out
	$(GO) run ./cmd/benchjson -set match < bench.out
	@rm -f bench.out

bench-mine-short:
	$(GO) test -run '^$$' -bench 'BenchmarkDMine$$|BenchmarkDiscoverExtensions|BenchmarkLocalMineRound|BenchmarkDiversifyUpdate' \
	    -benchmem -benchtime=3x ./internal/mine/ ./internal/diversify/ > bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkMineJob' \
	    -benchmem -benchtime=3x ./internal/serve/ >> bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkDMineDistributed' \
	    -benchmem -benchtime=3x ./internal/mine/remote/ >> bench.out
	$(GO) run ./cmd/benchjson -set mine < bench.out
	@rm -f bench.out

# Fail if any committed bench artifact records a speedup or allocation
# ratio below 1.0 — the regression gate CI runs on every push. The
# diversifier deliberately trades a few allocations for its 20x speedup
# (memoized pair distances), so it alone is waived from the alloc gate.
bench-guard:
	$(GO) run ./cmd/benchguard -allow-alloc BenchmarkDiversifyUpdate BENCH_match.json BENCH_mine.json

# CI load smoke: boot a real server, drive it under and past capacity,
# and assert it serves cleanly when calm, sheds 429s fast when saturated,
# and never falls over. Finishes in a few seconds.
loadtest:
	$(GO) run ./cmd/gparload -quick

# The full overload comparison behind the numbers in DESIGN.md: the same
# offered load with shedding on vs off. Takes ~30s plus the startup mine;
# for operators, not CI.
overload:
	$(GO) run ./cmd/gparload -overload -users 10000 -qps 300 -dur 10s

# The durability suite under the race detector: the disk fault harness,
# the snapshot format's truncation/bit-flip sweeps and crash-safe writes,
# and the crash-recovery differential oracle (kill-points at every WAL
# write). The tight timeout is the hang watchdog: recovery that wedges on
# an injected fault fails the build instead of stalling it.
crashtest:
	$(GO) test -race -timeout 120s ./internal/diskfault/ ./internal/snapfile/
	$(GO) test -race -timeout 120s -run 'TestCrashRecoveryOracle|TestRecover|TestCheckpoint|TestDeltaAborts|TestShutdownFlushes' \
	    ./internal/serve/

# Fail if any internal package lacks a package-level doc comment — the
# documentation gate CI runs on every push.
docs-check:
	$(GO) run ./cmd/docscheck internal

# Start the serving daemon on a generated Pokec-like graph, mining a
# starter rule set for the Disco predicate (see DESIGN.md quickstart).
serve: build
	./$(BIN)/gpard -addr :8080 -gen pokec -users 2000 -seed 1 \
	    -pred "user,like_music,music:Disco" -mine -k 8 -sigma 20

clean:
	rm -rf $(BIN) data demo-data
	find . -name '*.test' -type f -delete
	find . \( -name '*.gpsnap' -o -name '*.wal' -o -name '*.corrupt' \) -type f -delete
