GO ?= go
BIN := bin

.PHONY: all build vet test race serve clean

all: vet build test

build:
	$(GO) build -o $(BIN)/ ./cmd/...

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./internal/serve/ ./internal/partition/ ./internal/match/

# Start the serving daemon on a generated Pokec-like graph, mining a
# starter rule set for the Disco predicate (see DESIGN.md quickstart).
serve: build
	./$(BIN)/gpard -addr :8080 -gen pokec -users 2000 -seed 1 \
	    -pred "user,like_music,music:Disco" -mine -k 8 -sigma 20

clean:
	rm -rf $(BIN)
