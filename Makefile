GO ?= go
BIN := bin

.PHONY: all build vet test race bench bench-short serve clean

all: vet build test

build:
	$(GO) build -o $(BIN)/ ./cmd/...

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./internal/serve/ ./internal/partition/ ./internal/match/

# Run the match/eip hot-path benchmarks with -benchmem and record them,
# joined against the pre-CSR baseline, in BENCH_match.json. The two-step
# temp-file dance (rather than a pipe) makes a benchmark failure fail the
# target instead of being masked by the parser's exit status.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAnchoredMatch|BenchmarkMatchSet$$|BenchmarkIdentify' \
	    -benchmem -benchtime=1s ./internal/match/ ./internal/serve/ > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_match.json < bench.out
	@rm -f bench.out

# Short-mode variant for CI: one quick pass so regressions show up in PR
# logs without a stable-machine timing claim.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkAnchoredMatch|BenchmarkIdentify' \
	    -benchmem -benchtime=50x ./internal/match/ ./internal/serve/ > bench.out
	$(GO) run ./cmd/benchjson < bench.out
	@rm -f bench.out

# Start the serving daemon on a generated Pokec-like graph, mining a
# starter rule set for the Disco predicate (see DESIGN.md quickstart).
serve: build
	./$(BIN)/gpard -addr :8080 -gen pokec -users 2000 -seed 1 \
	    -pred "user,like_music,music:Disco" -mine -k 8 -sigma 20

clean:
	rm -rf $(BIN)
