package gpar_test

// End-to-end pipeline tests covering the same path as the command-line
// tools: generate a graph, serialize and reload it, mine rules, serialize
// and reload those, and identify entities — asserting that every round trip
// preserves the answers.

import (
	"bytes"
	"testing"

	"gpar/internal/core"
	"gpar/internal/eip"
	"gpar/internal/gen"
	"gpar/internal/graph"
	"gpar/internal/mine"
)

func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate a Pokec-like graph and serialize/reload it.
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(300, 5))
	var gbuf bytes.Buffer
	if _, err := g.WriteTo(&gbuf); err != nil {
		t.Fatal(err)
	}
	syms2 := graph.NewSymbols()
	g2, err := graph.Read(&gbuf, syms2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("graph round trip changed size: (%d,%d) vs (%d,%d)",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}

	// 2. Mine rules on the reloaded graph.
	pred := core.Predicate{
		XLabel:    syms2.Intern("user"),
		EdgeLabel: syms2.Intern("like_music"),
		YLabel:    syms2.Intern("music:Disco"),
	}
	opts := mine.Options{
		K: 5, Sigma: 3, D: 2, Lambda: 0.3, N: 3,
		MaxEdges: 2, MaxCandidatesPerRound: 30,
	}.WithOptimizations()
	res := mine.DMine(g2, pred, opts)
	if len(res.TopK) == 0 {
		t.Fatal("pipeline mining found no rules")
	}
	var rules []*core.Rule
	for _, mm := range res.TopK {
		rules = append(rules, mm.Rule)
	}

	// 3. Serialize/reload the rules into a third symbol table.
	var rbuf bytes.Buffer
	if err := core.WriteRules(&rbuf, rules); err != nil {
		t.Fatal(err)
	}
	syms3 := graph.NewSymbols()
	rules3, err := core.ReadRules(&rbuf, syms3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules3) != len(rules) {
		t.Fatalf("rule round trip changed count: %d vs %d", len(rules3), len(rules))
	}

	// 4. Reload the graph against the rules' symbol table and identify.
	gbuf.Reset()
	if _, err := g.WriteTo(&gbuf); err != nil {
		t.Fatal(err)
	}
	g3, err := graph.Read(&gbuf, syms3)
	if err != nil {
		t.Fatal(err)
	}
	before, err := eip.Match(g2, rules, eip.Options{N: 2, Eta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	after, err := eip.Match(g3, rules3, eip.Options{N: 2, Eta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Identified) != len(after.Identified) {
		t.Fatalf("round-tripped pipeline disagrees: %d vs %d identified",
			len(before.Identified), len(after.Identified))
	}
	for i := range before.Identified {
		if before.Identified[i] != after.Identified[i] {
			t.Fatalf("identified sets differ at %d", i)
		}
	}
	for i := range before.PerRule {
		if before.PerRule[i].Stats != after.PerRule[i].Stats {
			t.Errorf("rule %d stats differ: %+v vs %+v",
				i, before.PerRule[i].Stats, after.PerRule[i].Stats)
		}
	}
}

// TestPipelineMultiPredicate exercises the §4.2 Remark path end to end.
func TestPipelineMultiPredicate(t *testing.T) {
	syms := graph.NewSymbols()
	g := gen.Pokec(syms, gen.DefaultPokec(200, 9))
	preds := gen.PokecPredicates(syms)[:2]
	opts := mine.Options{
		K: 3, Sigma: 2, D: 2, Lambda: 0.5, N: 2,
		MaxEdges: 2, MaxCandidatesPerRound: 20,
	}.WithOptimizations()
	results, err := mine.DMineMulti(g, preds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		for _, mm := range r.Result.TopK {
			if mm.Rule.Pred != r.Pred {
				t.Error("cross-predicate rule leaked")
			}
		}
	}
}
