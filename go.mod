module gpar

go 1.24
