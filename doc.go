// Package gpar is a from-scratch Go reproduction of "Association Rules with
// Graph Patterns" (Wenfei Fan, Xin Wang, Yinghui Wu, Jingbo Xu; PVLDB 8(12),
// 2015): graph-pattern association rules (GPARs), their topological support
// and Bayes-Factor/LCWA confidence, the parallel diversified mining
// algorithm DMine (DMP), and the parallel scalable entity-identification
// algorithms Matchc/Match (EIP), together with the baselines the paper
// compares against (DMineno, disVF2, a GRAMI-like frequent-subgraph miner)
// and a benchmark harness regenerating every table and figure of its
// evaluation section.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are the commands under cmd/ and the
// programs under examples/. The substrate is a flat CSR graph core
// (internal/graph: Freeze compiles per-direction edge arenas with label
// range and candidate indexes) driving an allocation-free pooled matcher
// (internal/match) and an interned mining loop (internal/mine) whose BSP
// rounds run on recycled per-worker arenas — effectively allocation-free
// in steady state — with results byte-identical across worker counts,
// even when the embedding cap truncates dense neighborhoods.
//
// Beyond the paper's batch algorithms, the internal/serve subsystem and the
// gpard daemon (cmd/gpard) turn the reproduction into a mine-once/match-many
// serving system: a resident graph + rule-set snapshot with atomic hot-swap,
// a per-rule match-set cache, a mine-context cache (partitioned, frozen
// fragment preambles reused across mine jobs — borrowed straight from the
// serving snapshot when the layouts coincide — and shared across the
// predicates of one DMineMulti call), a pool of recycled mining worker
// sets, single-flight request batching, and a configurable CPU split so
// mine jobs and identify traffic share GOMAXPROCS instead of
// oversubscribing it, all behind a JSON HTTP API — endpoint reference
// in API.md. The root package exists to carry module-level documentation
// and the figure-by-figure benchmarks in bench_test.go.
package gpar
